#!/bin/sh
# chaos_smoke.sh — end-to-end rehearsal of the robustness path, run by
# `make chaos-smoke` and CI:
#
#   1. build a 2-shard multi container and keep a pristine copy
#   2. flip one byte inside the last member's body: the strict loader must
#      refuse the whole file, the degraded loader (-degraded) must
#      quarantine exactly that member and keep serving the healthy one
#   3. assert the degraded server's contract: healthy member 200,
#      quarantined member 503, /healthz 200 + degraded flag, /readyz 503
#      (1 healthy of 2 is below quorum), /statsz carries the ops block
#   4. fire loadgen at a chaos-injected server (-chaos-latency,
#      -chaos-error-rate) and assert on its JSON: injected 503s and added
#      latency are visible, nothing else breaks
#   5. restore the pristine file, SIGHUP the degraded server, and assert
#      /readyz recovers to 200 on the next generation with the formerly
#      quarantined member serving again
#
# Requires: go, curl, awk. Exits non-zero on any broken assertion.
set -eu

PORT="${CHAOS_PORT:-18090}"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

say() { echo "chaos-smoke: $*"; }

# field FILE KEY -> numeric value of "key": extracted without jq.
field() { awk -v k="\"$2\":" 'BEGIN{RS=","} index($0,k){sub(/.*:/,""); gsub(/[^0-9.eE+-]/,""); print; exit}' "$1"; }

# code URL -> the HTTP status, body discarded.
code() { curl -s -o /dev/null -w '%{http_code}' "$1"; }

wait_status() { # wait_status PATH WANT
    for _ in $(seq 1 50); do
        if [ "$(code "http://127.0.0.1:$PORT$1")" = "$2" ]; then
            return 0
        fi
        sleep 0.1
    done
    say "$1 never answered $2"; exit 1
}

say "building binaries"
go build -o "$TMP" ./cmd/terraingen ./cmd/sebuild ./cmd/seserve ./cmd/loadgen

say "generating terrain and 2-shard multi container"
"$TMP/terraingen" -out "$TMP/terrain.off" -pois "$TMP/pois.txt" \
    -nx 13 -ny 13 -dx 10 -amp 30 -npoi 40 -seed 7
"$TMP/sebuild" -kind=se -shards=2 -terrain "$TMP/terrain.off" -pois "$TMP/pois.txt" \
    -out "$TMP/multi.sedx" -eps 0.2 -seed 7
cp "$TMP/multi.sedx" "$TMP/pristine.sedx"

# --- corrupt one member body ------------------------------------------------
# Member sections are the last sections of a multi container, so the byte at
# filesize-8 (4 bytes before the outer CRC footer) sits inside the LAST
# member's body — flipping it breaks that member's inner CRC (and the
# advisory outer CRC) while leaving the manifest and the other member intact.
SIZE="$(wc -c < "$TMP/multi.sedx")"
OFF="$((SIZE - 8))"
say "flipping byte at offset $OFF of $SIZE"
dd if="$TMP/multi.sedx" of="$TMP/byte" bs=1 skip="$OFF" count=1 2>/dev/null
ORIG="$(od -An -tu1 "$TMP/byte" | tr -d ' ')"
printf "$(printf '\\%03o' $((ORIG ^ 255)))" \
    | dd of="$TMP/multi.sedx" bs=1 seek="$OFF" count=1 conv=notrunc 2>/dev/null

say "strict load must refuse the corrupt container"
if "$TMP/seserve" -index "$TMP/multi.sedx" -addr "127.0.0.1:$PORT" >"$TMP/strict.log" 2>&1; then
    say "strict seserve served a corrupt container"; exit 1
fi
grep -qi 'crc' "$TMP/strict.log" || { say "strict failure does not mention the CRC: $(cat "$TMP/strict.log")"; exit 1; }

# --- degraded serving -------------------------------------------------------
say "degraded load must quarantine the broken member and serve the rest"
"$TMP/seserve" -index "$TMP/multi.sedx" -addr "127.0.0.1:$PORT" -degraded >"$TMP/serve.log" 2>&1 &
SERVER_PID=$!
wait_status /healthz 200

QUAR="$(sed -n 's/.*DEGRADED: member "\([^"]*\)".*/\1/p' "$TMP/serve.log" | head -1)"
[ -n "$QUAR" ] || { say "server log names no quarantined member: $(cat "$TMP/serve.log")"; exit 1; }
if [ "$QUAR" = "tile-0-0" ]; then HEALTHY="tile-1-0"; else HEALTHY="tile-0-0"; fi
say "quarantined member: $QUAR (healthy: $HEALTHY)"

[ "$(code "http://127.0.0.1:$PORT/v1/query?index=$HEALTHY&s=0&t=1")" = "200" ] \
    || { say "healthy member does not serve"; exit 1; }
[ "$(code "http://127.0.0.1:$PORT/v1/query?index=$QUAR&s=0&t=1")" = "503" ] \
    || { say "quarantined member did not answer 503"; exit 1; }
[ "$(code "http://127.0.0.1:$PORT/v1/query?index=no-such-tile&s=0&t=1")" = "404" ] \
    || { say "unknown member did not stay 404 while degraded"; exit 1; }

# 1 healthy of 2 is below quorum: alive (healthz 200) but not ready.
curl -fsS "http://127.0.0.1:$PORT/healthz" >"$TMP/health.json"
grep -q '"degraded":true' "$TMP/health.json" || { say "healthz does not flag degradation: $(cat "$TMP/health.json")"; exit 1; }
[ "$(code "http://127.0.0.1:$PORT/readyz")" = "503" ] || { say "readyz below quorum is not 503"; exit 1; }
curl -s "http://127.0.0.1:$PORT/readyz" >"$TMP/ready.json"
grep -q "\"$QUAR\"" "$TMP/ready.json" || { say "readyz does not name the quarantined member: $(cat "$TMP/ready.json")"; exit 1; }

# The ops block is the overload/degradation dashboard.
curl -fsS "http://127.0.0.1:$PORT/statsz" >"$TMP/stats.json"
for key in '"ops"' '"in_flight"' '"shed"' '"panics"' '"deadline_exceeded"' '"quarantined"'; do
    grep -q "$key" "$TMP/stats.json" || { say "statsz lacks $key: see /statsz"; exit 1; }
done

kill "$SERVER_PID" && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# --- chaos injection under load ---------------------------------------------
# Every 4th request fails with an injected 503 and every data request gains
# 20ms — loadgen's report must show exactly that shape: successes AND
# injected unavailability, p50 over the injected floor, no transport errors
# (chaos must degrade responses, never break the protocol).
say "serving the pristine container with chaos injection (20ms, 25% errors)"
cp "$TMP/pristine.sedx" "$TMP/multi.sedx"
"$TMP/seserve" -index "$TMP/multi.sedx" -addr "127.0.0.1:$PORT" \
    -chaos-latency 20ms -chaos-error-rate 0.25 >"$TMP/chaos.log" 2>&1 &
SERVER_PID=$!
wait_status /healthz 200
grep -q 'CHAOS ACTIVE' "$TMP/chaos.log" || { say "chaos flags did not announce themselves"; exit 1; }

"$TMP/loadgen" -url "http://127.0.0.1:$PORT/v1/query?index=tile-0-0&s=0&t=1" \
    -rate 100 -duration 2s -json >"$TMP/load.json"
OK="$(field "$TMP/load.json" ok)"
UNAVAIL="$(field "$TMP/load.json" unavailable)"
TRANSPORT="$(field "$TMP/load.json" transport_errors)"
P50="$(field "$TMP/load.json" p50_ms)"
P99="$(field "$TMP/load.json" p99_ms)"
say "loadgen: ok=$OK unavailable=$UNAVAIL transport=$TRANSPORT p50=${P50}ms p99=${P99}ms"
[ "${OK:-0}" -ge 1 ] || { say "no successful requests under chaos"; exit 1; }
[ "${UNAVAIL:-0}" -ge 1 ] || { say "error-rate 0.25 injected no 503s"; exit 1; }
[ "${TRANSPORT:-1}" = "0" ] || { say "chaos produced $TRANSPORT transport errors"; exit 1; }
awk -v p="$P50" 'BEGIN{exit !(p >= 20)}' || { say "p50 ${P50}ms under the injected 20ms floor"; exit 1; }
awk -v a="$P50" -v b="$P99" 'BEGIN{exit !(b >= a)}' || { say "p99 ${P99}ms below p50 ${P50}ms"; exit 1; }

kill "$SERVER_PID" && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# --- hot-reload recovery ----------------------------------------------------
say "recovery: corrupt start, restore the file, SIGHUP, expect ready"
printf "$(printf '\\%03o' $((ORIG ^ 255)))" \
    | dd of="$TMP/multi.sedx" bs=1 seek="$OFF" count=1 conv=notrunc 2>/dev/null
"$TMP/seserve" -index "$TMP/multi.sedx" -addr "127.0.0.1:$PORT" -degraded >"$TMP/reload.log" 2>&1 &
SERVER_PID=$!
wait_status /healthz 200
[ "$(code "http://127.0.0.1:$PORT/readyz")" = "503" ] || { say "degraded restart is unexpectedly ready"; exit 1; }

cp "$TMP/pristine.sedx" "$TMP/multi.sedx"
kill -HUP "$SERVER_PID"
wait_status /readyz 200
curl -s "http://127.0.0.1:$PORT/readyz" >"$TMP/ready2.json"
grep -q '"generation":1' "$TMP/ready2.json" || { say "reload did not advance the generation: $(cat "$TMP/ready2.json")"; exit 1; }
[ "$(code "http://127.0.0.1:$PORT/v1/query?index=$QUAR&s=0&t=1")" = "200" ] \
    || { say "formerly quarantined member still unserved after reload"; exit 1; }

say "OK (strict refusal, degraded quarantine + quorum, chaos visible to loadgen, SIGHUP recovery)"

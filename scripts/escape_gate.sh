#!/bin/sh
# escape_gate.sh — the build-mode half of the hot-path guarantee.
#
# Compiles the given packages (default: the whole module) with the
# compiler's escape-analysis report enabled and fails when any function
# annotated //sealint:hotpath gains a compiler-proved heap allocation
# ("escapes to heap" / "moved to heap"). Lines excused with a
# //sealint:ignore <reason> on the same or preceding source line do not
# count, so sanctioned error-path allocations stay documented in one place
# for both the static analyzer and this gate.
#
# Usage: scripts/escape_gate.sh [package patterns...]
#
# The build cache replays compiler diagnostics on cache hits, so repeated
# runs stay correct without forced rebuilds. GOFLAGS is honored, which is
# how CI points the gate at the build-tagged seeded-regression fixture:
#
#   GOFLAGS=-tags=escapegate_fixture scripts/escape_gate.sh \
#       ./internal/analysis/testdata/escapegate   # must exit non-zero
set -eu
cd "$(dirname "$0")/.."

[ "$#" -gt 0 ] || set -- ./...

mout="$(mktemp)"
bindir="$(mktemp -d)"
trap 'rm -rf "$mout" "$bindir"' EXIT

# -o into a scratch dir keeps main-package binaries out of the tree, but
# `go build -o` refuses pattern sets with no main package at all, so only
# pass it when one is present. The escape report arrives on stderr.
outflags=""
if go list -f '{{.Name}}' "$@" 2>/dev/null | grep -qx main; then
    outflags="-o $bindir"
fi
# shellcheck disable=SC2086 # outflags is intentionally word-split
if ! go build $outflags -gcflags=-m "$@" 2> "$mout"; then
    echo "escape_gate: go build failed:" >&2
    cat "$mout" >&2
    exit 2
fi

exec go run ./cmd/sealint -escape-check="$mout" "$@"

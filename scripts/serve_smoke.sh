#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the index build/store/serve
# pipeline, run by `make serve-smoke` and CI:
#
#   1. generate a small terrain + POI set (terraingen)
#   2. build and serialize an SE index (sebuild -kind=se), an A2A index
#      (sebuild -kind=a2a), a 2-shard multi container (sebuild -shards=2)
#      and a 4-shard 2-level LOD hierarchy (sebuild -shards=4 -lod=2)
#   3. answer a query offline with sequery
#   4. start seserve on the same container, hit /healthz, /v1/query,
#      /v1/path, /v1/nearest (single and k=3), /v1/matrix, /v1/isochrone
#      and /statsz with curl
#   5. assert the served distance equals sequery's answer, for every kind;
#      assert /v1/path returns a GeoJSON LineString on the single and the
#      2-shard containers; assert a 1x1 /v1/matrix cell equals the scalar
#      answer (single and named-member); for the multi container also
#      assert routing by member name and by coordinates, the unnamed
#      k-nearest fan-out with member tags, and that the query cache
#      reports hits in /statsz
#
# Requires: go, curl, awk. Exits non-zero on any mismatch.
set -eu

PORT="${SMOKE_PORT:-18080}"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

say() { echo "serve-smoke: $*"; }

say "building binaries"
go build -o "$TMP" ./cmd/terraingen ./cmd/sebuild ./cmd/sequery ./cmd/seserve

say "generating terrain"
"$TMP/terraingen" -out "$TMP/terrain.off" -pois "$TMP/pois.txt" \
    -nx 13 -ny 13 -dx 10 -amp 30 -npoi 40 -seed 7

wait_healthy() {
    for _ in $(seq 1 50); do
        if curl -fsS "http://127.0.0.1:$PORT/healthz" >"$TMP/health.json" 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    say "server did not become healthy"; exit 1
}

# curl_json URL -> stdout; fails loudly on HTTP errors.
curl_json() { curl -fsS "$1"; }

# field FILE KEY -> numeric value of "key": extracted without jq.
field() { awk -v k="\"$2\":" 'BEGIN{RS=","} index($0,k){sub(/.*:/,""); gsub(/[^0-9.eE+-]/,""); print; exit}' "$1"; }

# --- SE kind ----------------------------------------------------------------
say "building se index"
"$TMP/sebuild" -kind=se -terrain "$TMP/terrain.off" -pois "$TMP/pois.txt" \
    -out "$TMP/se.sedx" -eps 0.2 -seed 7 -check

WANT_SE="$("$TMP/sequery" -oracle "$TMP/se.sedx" -s 0 -t 5 | awk -F'= ' '{print $2}' | awk '{print $1}')"
[ -n "$WANT_SE" ] || { say "sequery produced no SE answer"; exit 1; }
say "sequery says d(0,5) = $WANT_SE"

"$TMP/seserve" -index "$TMP/se.sedx" -addr "127.0.0.1:$PORT" &
SERVER_PID=$!
wait_healthy
grep -q '"kind":"se"' "$TMP/health.json" || { say "healthz kind mismatch: $(cat "$TMP/health.json")"; exit 1; }

curl_json "http://127.0.0.1:$PORT/v1/query?s=0&t=5" >"$TMP/q.json"
GOT_SE="$(field "$TMP/q.json" distance)"
say "seserve says d(0,5) = $GOT_SE"
[ "$GOT_SE" = "$WANT_SE" ] || { say "SE distance mismatch: sequery=$WANT_SE server=$GOT_SE"; exit 1; }

# Path reporting on the single container: a GeoJSON LineString Feature
# whose vertex count is sane, served and via the CLI.
curl_json "http://127.0.0.1:$PORT/v1/path?s=0&t=5" >"$TMP/p.json"
grep -q '"LineString"' "$TMP/p.json" || { say "/v1/path is not a LineString: $(cat "$TMP/p.json")"; exit 1; }
PVERTS="$(field "$TMP/p.json" vertices)"
[ "${PVERTS:-0}" -ge 2 ] 2>/dev/null || { say "/v1/path has $PVERTS vertices, want >= 2"; exit 1; }
PDIST="$(field "$TMP/p.json" distance)"
say "seserve path d(0,5) = $PDIST over $PVERTS vertices"
"$TMP/sequery" -oracle "$TMP/se.sedx" -path -s 0 -t 5 >"$TMP/pcli.json" 2>/dev/null
grep -q '"LineString"' "$TMP/pcli.json" || { say "sequery -path produced no LineString"; exit 1; }

curl_json "http://127.0.0.1:$PORT/v1/nearest?x=40&y=40" >/dev/null

# The matrix endpoint: a 1x1 sources×targets matrix must equal the scalar
# answer, served and via the CLI.
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"sources":[0],"targets":[5]}' "http://127.0.0.1:$PORT/v1/matrix" >"$TMP/m.json"
GOT_MX="$(field "$TMP/m.json" distances)"
say "seserve matrix cell (0,5) = $GOT_MX"
[ "$GOT_MX" = "$WANT_SE" ] || { say "matrix cell mismatch: scalar=$WANT_SE matrix=$GOT_MX"; exit 1; }
CLI_MX="$("$TMP/sequery" -oracle "$TMP/se.sedx" -matrix -sources 0 -targets 5 2>/dev/null)"
[ "$CLI_MX" = "$WANT_SE" ] || { say "sequery -matrix mismatch: scalar=$WANT_SE matrix=$CLI_MX"; exit 1; }

# k-nearest: three neighbors, in ascending distance order.
curl_json "http://127.0.0.1:$PORT/v1/nearest?x=40&y=40&k=3" >"$TMP/k.json"
grep -q '"k":3' "$TMP/k.json" || { say "nearest k=3 reply lacks k: $(cat "$TMP/k.json")"; exit 1; }
KCOUNT="$(field "$TMP/k.json" count)"
[ "${KCOUNT:-0}" = "3" ] || { say "nearest k=3 returned count=$KCOUNT"; exit 1; }

# Isochrone: a GeoJSON FeatureCollection with a contour.
curl_json "http://127.0.0.1:$PORT/v1/isochrone?s=0&d=500" >"$TMP/iso.json"
grep -q '"FeatureCollection"' "$TMP/iso.json" || { say "/v1/isochrone is not a FeatureCollection"; exit 1; }
grep -q '"contour"' "$TMP/iso.json" || { say "/v1/isochrone has no contour feature"; exit 1; }

curl_json "http://127.0.0.1:$PORT/statsz" >"$TMP/stats.json"
grep -q '"/v1/query"' "$TMP/stats.json" || { say "statsz missing endpoint metrics"; exit 1; }
grep -q '"/v1/matrix"' "$TMP/stats.json" || { say "statsz missing /v1/matrix metrics"; exit 1; }

kill "$SERVER_PID" && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# --- A2A kind ---------------------------------------------------------------
say "building a2a index"
"$TMP/sebuild" -kind=a2a -terrain "$TMP/terrain.off" -out "$TMP/a2a.sedx" -eps 0.3 -seed 7

WANT_A2A="$("$TMP/sequery" -oracle "$TMP/a2a.sedx" -xy -sx 20 -sy 20 -tx 100 -ty 110 | awk -F'= ' '{print $2}' | awk '{print $1}')"
[ -n "$WANT_A2A" ] || { say "sequery produced no A2A answer"; exit 1; }
say "sequery says d((20,20),(100,110)) = $WANT_A2A"

"$TMP/seserve" -index "$TMP/a2a.sedx" -addr "127.0.0.1:$PORT" -mmap &
SERVER_PID=$!
wait_healthy
grep -q '"kind":"a2a"' "$TMP/health.json" || { say "healthz kind mismatch: $(cat "$TMP/health.json")"; exit 1; }

curl_json "http://127.0.0.1:$PORT/v1/query?sx=20&sy=20&tx=100&ty=110" >"$TMP/q2.json"
GOT_A2A="$(field "$TMP/q2.json" distance)"
say "seserve says d((20,20),(100,110)) = $GOT_A2A"
[ "$GOT_A2A" = "$WANT_A2A" ] || { say "A2A distance mismatch: sequery=$WANT_A2A server=$GOT_A2A"; exit 1; }

# Coordinate-addressed path on the a2a container.
curl_json "http://127.0.0.1:$PORT/v1/path?sx=20&sy=20&tx=100&ty=110" >"$TMP/p2.json"
grep -q '"LineString"' "$TMP/p2.json" || { say "a2a /v1/path is not a LineString: $(cat "$TMP/p2.json")"; exit 1; }

kill "$SERVER_PID" && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# --- sharded multi kind -----------------------------------------------------
say "building 2-shard multi index"
"$TMP/sebuild" -kind=se -shards=2 -terrain "$TMP/terrain.off" -pois "$TMP/pois.txt" \
    -out "$TMP/multi.sedx" -eps 0.2 -seed 7

WANT_M="$("$TMP/sequery" -oracle "$TMP/multi.sedx" -index tile-0-0 -s 0 -t 1 | awk -F'= ' '{print $2}' | awk '{print $1}')"
[ -n "$WANT_M" ] || { say "sequery produced no multi answer"; exit 1; }
say "sequery says tile-0-0 d(0,1) = $WANT_M"

"$TMP/seserve" -index "$TMP/multi.sedx" -addr "127.0.0.1:$PORT" -cache 256 &
SERVER_PID=$!
wait_healthy
grep -q '"kind":"multi"' "$TMP/health.json" || { say "healthz kind mismatch: $(cat "$TMP/health.json")"; exit 1; }
grep -q 'tile-0-0' "$TMP/health.json" || { say "healthz lists no members: $(cat "$TMP/health.json")"; exit 1; }

# Route by member name; the repeat of the same query must be a cache hit.
for _ in 1 2; do
    curl_json "http://127.0.0.1:$PORT/v1/query?index=tile-0-0&s=0&t=1" >"$TMP/qm.json"
done
GOT_M="$(field "$TMP/qm.json" distance)"
say "seserve says tile-0-0 d(0,1) = $GOT_M"
[ "$GOT_M" = "$WANT_M" ] || { say "multi distance mismatch: sequery=$WANT_M server=$GOT_M"; exit 1; }

# Route /v1/nearest by coordinates: the left half of the terrain belongs to
# tile-0-0, the right half to tile-1-0.
curl_json "http://127.0.0.1:$PORT/v1/nearest?x=10&y=60" >"$TMP/n0.json"
grep -q '"index":"tile-0-0"' "$TMP/n0.json" || { say "nearest (10,60) routed wrong: $(cat "$TMP/n0.json")"; exit 1; }
curl_json "http://127.0.0.1:$PORT/v1/nearest?x=110&y=60" >"$TMP/n1.json"
grep -q '"index":"tile-1-0"' "$TMP/n1.json" || { say "nearest (110,60) routed wrong: $(cat "$TMP/n1.json")"; exit 1; }

# Path reporting routes across the sharded container by member name and
# returns valid GeoJSON carrying the answering member.
curl_json "http://127.0.0.1:$PORT/v1/path?index=tile-0-0&s=0&t=1" >"$TMP/pm.json"
grep -q '"LineString"' "$TMP/pm.json" || { say "sharded /v1/path is not a LineString: $(cat "$TMP/pm.json")"; exit 1; }
grep -q '"index":"tile-0-0"' "$TMP/pm.json" || { say "sharded /v1/path lost its member name: $(cat "$TMP/pm.json")"; exit 1; }
PMV="$(field "$TMP/pm.json" vertices)"
[ "${PMV:-0}" -ge 2 ] 2>/dev/null || { say "sharded /v1/path has $PMV vertices, want >= 2"; exit 1; }
say "sharded path tile-0-0 d(0,1): $PMV vertices"

# Matrix on the sharded container: member-name routing, cell equals the
# scalar answer of the same member-local pair.
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"index":"tile-0-0","sources":[0],"targets":[1]}' "http://127.0.0.1:$PORT/v1/matrix" >"$TMP/mm.json"
GOT_MM="$(field "$TMP/mm.json" distances)"
say "seserve matrix tile-0-0 cell (0,1) = $GOT_MM"
[ "$GOT_MM" = "$WANT_M" ] || { say "sharded matrix mismatch: scalar=$WANT_M matrix=$GOT_MM"; exit 1; }

# Unnamed k-nearest fans out across every member and tags each neighbor
# with the member that owns its id.
curl_json "http://127.0.0.1:$PORT/v1/nearest?x=60&y=60&k=3" >"$TMP/km.json"
KMC="$(field "$TMP/km.json" count)"
[ "${KMC:-0}" = "3" ] || { say "sharded nearest k=3 returned count=$KMC"; exit 1; }
grep -q '"index":"tile-' "$TMP/km.json" || { say "sharded nearest k=3 lost member tags: $(cat "$TMP/km.json")"; exit 1; }

# Unknown member names are 404s.
CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/v1/query?index=nope&s=0&t=1")"
[ "$CODE" = "404" ] || { say "unknown member returned $CODE, want 404"; exit 1; }

curl_json "http://127.0.0.1:$PORT/statsz" >"$TMP/statsm.json"
grep -q '"tile-1-0"' "$TMP/statsm.json" || { say "statsz missing per-member stats"; exit 1; }
HITS="$(field "$TMP/statsm.json" hits)"
MISSES="$(field "$TMP/statsm.json" misses)"
say "cache: hits=$HITS misses=$MISSES"
[ "${HITS:-0}" -ge 1 ] 2>/dev/null || { say "expected >= 1 cache hit, got '$HITS'"; exit 1; }
[ "${MISSES:-0}" -ge 1 ] 2>/dev/null || { say "expected >= 1 cache miss, got '$MISSES'"; exit 1; }

kill "$SERVER_PID" && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# --- 2-level LOD hierarchy under a memory budget ----------------------------
say "building 4-shard 2-level LOD index"
"$TMP/sebuild" -kind=se -shards=4 -lod=2 -terrain "$TMP/terrain.off" -pois "$TMP/pois.txt" \
    -out "$TMP/lod.sedx" -eps 0.2 -seed 7

# Global-id queries need no member name on a hierarchical container; pick a
# pair that straddles tiles (id 0 lives in the first fine tile, the last id
# in the last) and get the offline answer.
WANT_X="$("$TMP/sequery" -oracle "$TMP/lod.sedx" -s 0 -t 39 | awk -F'= ' '{print $2}' | awk '{print $1}')"
[ -n "$WANT_X" ] || { say "sequery produced no global-id answer"; exit 1; }
say "sequery says global d(0,39) = $WANT_X"

# Serve under a 1-byte budget: every member is lazy, every fault immediately
# exceeds the budget, so the resident set must evict — the container serves
# while never holding more than ~one decoded tile.
"$TMP/seserve" -index "$TMP/lod.sedx" -addr "127.0.0.1:$PORT" -mem-budget 1 &
SERVER_PID=$!
wait_healthy
grep -q '"kind":"multi"' "$TMP/health.json" || { say "healthz kind mismatch: $(cat "$TMP/health.json")"; exit 1; }

# Cross-tile global-id query: the served answer must equal sequery's.
curl_json "http://127.0.0.1:$PORT/v1/query?s=0&t=39" >"$TMP/qx.json"
GOT_X="$(field "$TMP/qx.json" distance)"
say "seserve says global d(0,39) = $GOT_X"
[ "$GOT_X" = "$WANT_X" ] || { say "cross-tile distance mismatch: sequery=$WANT_X server=$GOT_X"; exit 1; }

# Cross-tile path: one LineString stitched across the seam.
curl_json "http://127.0.0.1:$PORT/v1/path?s=0&t=39" >"$TMP/px.json"
grep -q '"LineString"' "$TMP/px.json" || { say "cross-tile /v1/path is not a LineString: $(cat "$TMP/px.json")"; exit 1; }
PXV="$(field "$TMP/px.json" vertices)"
[ "${PXV:-0}" -ge 2 ] 2>/dev/null || { say "cross-tile /v1/path has $PXV vertices, want >= 2"; exit 1; }

# A coordinate pair straddling two tiles routes through the hierarchy
# instead of the legacy cross-member rejection.
curl_json "http://127.0.0.1:$PORT/v1/query?sx=10&sy=60&tx=110&ty=60" >"$TMP/qc.json"
GOT_C="$(field "$TMP/qc.json" distance)"
[ -n "$GOT_C" ] || { say "straddling coordinate query failed: $(cat "$TMP/qc.json")"; exit 1; }
say "straddling d((10,60),(110,60)) = $GOT_C"

# A few more global pairs to churn the resident set under the 1-byte budget.
for T in 10 20 30 39; do
    curl_json "http://127.0.0.1:$PORT/v1/query?s=0&t=$T" >/dev/null
done

# The /statsz tiles block must show the hierarchy and the budget at work:
# 2 levels, portals present, faults recorded, and at least one eviction.
curl_json "http://127.0.0.1:$PORT/statsz" >"$TMP/statsl.json"
grep -q '"tiles"' "$TMP/statsl.json" || { say "statsz has no tiles block"; exit 1; }
TLEVELS="$(field "$TMP/statsl.json" levels)"
[ "${TLEVELS:-0}" = "2" ] || { say "tiles.levels=$TLEVELS, want 2"; exit 1; }
TPORTALS="$(field "$TMP/statsl.json" portals)"
[ "${TPORTALS:-0}" -ge 1 ] 2>/dev/null || { say "tiles.portals=$TPORTALS, want >= 1"; exit 1; }
TBUDGET="$(field "$TMP/statsl.json" budget_bytes)"
[ "${TBUDGET:-0}" = "1" ] || { say "tiles.budget_bytes=$TBUDGET, want 1"; exit 1; }
TFAULTS="$(field "$TMP/statsl.json" faults)"
[ "${TFAULTS:-0}" -ge 1 ] 2>/dev/null || { say "tiles.faults=$TFAULTS, want >= 1"; exit 1; }
TEVICT="$(field "$TMP/statsl.json" evictions)"
[ "${TEVICT:-0}" -ge 1 ] 2>/dev/null || { say "tiles.evictions=$TEVICT, want >= 1"; exit 1; }
say "tiles: levels=$TLEVELS portals=$TPORTALS faults=$TFAULTS evictions=$TEVICT (budget 1 byte)"

say "OK (se + a2a + sharded multi + LOD-under-budget served, answers match sequery, cache hit recorded)"

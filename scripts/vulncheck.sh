#!/bin/sh
# vulncheck.sh — govulncheck wrapper. The module has zero third-party
# dependencies, so every reachable finding is by definition a standard
# library vulnerability and therefore blocking. Locally the tool may not be
# installed (the build environment is offline); in that case the check is
# skipped with a notice rather than failing the build. CI installs the tool
# and runs this same script, so the blocking behavior is exercised on every
# push.
set -eu
cd "$(dirname "$0")/.."

if ! command -v govulncheck >/dev/null 2>&1; then
    echo "vulncheck: govulncheck not installed; skipping (CI runs it)"
    exit 0
fi

exec govulncheck ./...

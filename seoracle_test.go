package seoracle

import (
	"bytes"
	"math"
	"testing"

	"seoracle/internal/gen"
)

func testTerrain(t *testing.T, seed int64) *Terrain {
	t.Helper()
	mesh, err := GenerateFractalTerrain(FractalSpec{NX: 15, NY: 15, CellDX: 10, Amp: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return mesh
}

// End-to-end through the public API: generate, build, query, verify against
// the exact engine, serialize and reload.
func TestPublicAPIEndToEnd(t *testing.T) {
	mesh := testTerrain(t, 71)
	pois, err := SampleUniformPOIs(mesh, 25, 72)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.15
	oracle, err := Build(mesh, pois, Options{Epsilon: eps, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactDistances(mesh, pois[0], pois)
	for i := 1; i < len(pois); i++ {
		got, err := oracle.Query(0, int32(i))
		if err != nil {
			t.Fatal(err)
		}
		if re := math.Abs(got-exact[i]) / exact[i]; re > eps {
			t.Errorf("POI %d: error %v above eps", i, re)
		}
	}

	var buf bytes.Buffer
	if err := oracle.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadOracle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pois); i++ {
		a, _ := oracle.Query(0, int32(i))
		b, _ := loaded.Query(0, int32(i))
		if a != b {
			t.Fatalf("reloaded oracle differs at POI %d", i)
		}
	}
}

// The public container surface: every engine kind serializes with EncodeTo
// and comes back through Load as the right concrete type behind the
// DistanceIndex interface.
func TestPublicAPIContainerRoundTrip(t *testing.T) {
	mesh := testTerrain(t, 91)
	pois, err := SampleUniformPOIs(mesh, 12, 92)
	if err != nil {
		t.Fatal(err)
	}
	se, err := Build(mesh, pois, Options{Epsilon: 0.2, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := BuildDynamic(mesh, pois, Options{Epsilon: 0.2, Seed: 94})
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []DistanceIndex{se, dyn} {
		var buf bytes.Buffer
		if err := idx.EncodeTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Stats().Kind != idx.Stats().Kind {
			t.Fatalf("kind changed: %s -> %s", idx.Stats().Kind, back.Stats().Kind)
		}
		a, err1 := idx.Query(0, 1)
		b, err2 := back.Query(0, 1)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("%s: %v/%v vs %v/%v", idx.Stats().Kind, a, err1, b, err2)
		}
	}
	if _, ok := interface{}(se).(DistanceIndex); !ok {
		t.Fatal("Oracle does not satisfy DistanceIndex")
	}
}

// V2V mode: every vertex is a POI (§5.2.2).
func TestPublicAPIV2V(t *testing.T) {
	mesh := testTerrain(t, 74)
	pois := VertexPOIs(mesh)
	if len(pois) != mesh.NumVerts() {
		t.Fatalf("vertex POIs: %d, want %d", len(pois), mesh.NumVerts())
	}
	oracle, err := Build(mesh, pois, Options{Epsilon: 0.25, Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	d, err := oracle.Query(0, int32(mesh.NumVerts()-1))
	if err != nil {
		t.Fatal(err)
	}
	want := ExactDistance(mesh, pois[0], pois[mesh.NumVerts()-1])
	if re := math.Abs(d-want) / want; re > 0.25 {
		t.Errorf("V2V corner query error %v", re)
	}
}

func TestPublicAPIA2A(t *testing.T) {
	mesh := testTerrain(t, 76)
	a2a, err := BuildA2A(mesh, Options{Epsilon: 0.25, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	s := mesh.FacePoint(3, 0.2, 0.5, 0.3)
	d := mesh.FacePoint(int32(mesh.NumFaces()-4), 0.6, 0.2, 0.2)
	got, err := a2a.QueryPoints(s, d)
	if err != nil {
		t.Fatal(err)
	}
	want := ExactDistance(mesh, s, d)
	if re := math.Abs(got-want) / want; re > 0.25 {
		t.Errorf("A2A error %v", re)
	}
}

func TestPublicAPITerrainIO(t *testing.T) {
	mesh := testTerrain(t, 78)
	var buf bytes.Buffer
	if err := WriteTerrainOFF(&buf, mesh); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTerrainOFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVerts() != mesh.NumVerts() {
		t.Error("terrain roundtrip changed vertex count")
	}
}

func TestPublicAPIGridTerrain(t *testing.T) {
	mesh, err := GenerateGridTerrain(4, 4, 1, 1, make([]float64, 16))
	if err != nil {
		t.Fatal(err)
	}
	if mesh.NumFaces() != 18 {
		t.Errorf("grid faces = %d", mesh.NumFaces())
	}
	v := mesh.Verts
	mesh2, err := NewTerrain(v, mesh.Faces)
	if err != nil {
		t.Fatal(err)
	}
	if mesh2.NumEdges() != mesh.NumEdges() {
		t.Error("NewTerrain changed topology")
	}
}

// The clustered generator feeds the greedy strategy through the public API
// path used in the README.
func TestPublicAPIClusteredGreedy(t *testing.T) {
	mesh := testTerrain(t, 79)
	pois, err := gen.ClusteredPOIs(mesh, 30, 3, 0.05, 80)
	if err != nil {
		t.Fatal(err)
	}
	pois = gen.Dedup(pois, 1e-9)
	oracle, err := Build(mesh, pois, Options{Epsilon: 0.2, Selection: SelectGreedy, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// The PR 6 workload exports: one oracle answers matrices, k-nearest and
// isochrones through the root package, consistently with scalar Query.
func TestPublicAPIWorkloads(t *testing.T) {
	mesh := testTerrain(t, 91)
	pois, err := SampleUniformPOIs(mesh, 20, 92)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Build(mesh, pois, Options{Epsilon: 0.2, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	var mi MatrixIndex = oracle
	sources, targets := []int32{0, 1}, []int32{2, 3, 4}
	cells, err := mi.QueryMatrix(sources, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sources {
		for j, tgt := range targets {
			want, err := oracle.Query(s, tgt)
			if err != nil {
				t.Fatal(err)
			}
			if cells[i*len(targets)+j] != want {
				t.Errorf("matrix cell (%d,%d) disagrees with Query", i, j)
			}
		}
	}

	var nk NearestKFinder = oracle
	ns, err := nk.NearestK(pois[5].P.X, pois[5].P.Y, 1)
	if err != nil {
		t.Fatal(err)
	}
	id, _, _, err := oracle.Nearest(pois[5].P.X, pois[5].P.Y)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].ID != id {
		t.Errorf("NearestK(1) = %v, Nearest says id %d", ns, id)
	}

	var ri Reachability = oracle
	far, err := oracle.Query(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	reached, err := ri.Reachable(0, far)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	pts := make([]SurfacePoint, len(reached))
	for i, rc := range reached {
		if rc.ID == 10 {
			found = true
		}
		pts[i] = rc.At
	}
	if !found {
		t.Errorf("Reachable(0, d(0,10)) misses POI 10")
	}
	if hull := PlanarHull(pts); len(reached) >= 3 && len(hull) < 1 {
		t.Errorf("PlanarHull empty over %d reached points", len(reached))
	}
}

// Package seoracle is a Go implementation of the Space-Efficient distance
// oracle (SE) for geodesic shortest-distance queries on terrain surfaces,
// reproducing "Distance Oracle on Terrain Surface" (Wei, Wong, Long, Mount;
// SIGMOD 2017).
//
// The library answers ε-approximate geodesic distance queries between
// points-of-interest (POIs) on a triangulated terrain in O(h) time (h is the
// POI partition-tree height, < 30 in practice) from an index whose size is
// linear in the number of POIs — independent of the terrain size. It also
// ships the substrates the paper builds on: an exact geodesic
// single-source-all-destinations (SSAD) engine in the continuous-Dijkstra
// (MMP) paradigm, Steiner-graph approximations, an FKS perfect hash and a
// B+-tree, plus the baselines the paper compares against.
//
// Basic usage:
//
//	mesh, _ := seoracle.GenerateFractalTerrain(seoracle.FractalSpec{
//		NX: 65, NY: 65, CellDX: 10, Amp: 120, Seed: 1,
//	})
//	pois, _ := seoracle.SampleUniformPOIs(mesh, 200, 2)
//	oracle, _ := seoracle.Build(mesh, pois, seoracle.Options{Epsilon: 0.1})
//	d, _ := oracle.Query(3, 17) // ε-approximate geodesic distance
//
// Construction parallelizes its SSAD fan-out across Options.Workers
// goroutines (default: all CPUs) and is bit-identical for every worker
// count; a built Oracle is immutable and may be queried concurrently from
// any number of goroutines.
//
// For arbitrary (non-POI) query points, build an A2A oracle with
// BuildA2A. For exact one-off distances, use ExactDistance.
//
// Every engine — the SE Oracle, the A2A oracle, the dynamic oracle —
// implements the DistanceIndex interface, serializes itself with EncodeTo
// into a self-describing container file, and is restored (as the right
// concrete type) with Load. cmd/seserve serves any such file over HTTP.
//
// Beyond scalar distances, every engine answers three bulk workloads:
// many-to-many distance matrices (MatrixIndex), k-nearest-endpoint
// queries (NearestKFinder) and reachability isochrones (Reachability,
// with PlanarHull for contours). See docs/API.md for the HTTP surface and
// docs/ARCHITECTURE.md for the layer map.
package seoracle

import (
	"io"

	"seoracle/internal/core"
	"seoracle/internal/gen"
	"seoracle/internal/geodesic"
	"seoracle/internal/geom"
	"seoracle/internal/terrain"
)

// Terrain is a triangulated terrain surface (a TIN).
type Terrain = terrain.Mesh

// SurfacePoint is a point on a terrain surface.
type SurfacePoint = terrain.SurfacePoint

// Stats summarizes a terrain's structural and metric properties.
type Stats = terrain.Stats

// Oracle is the SE distance oracle over a fixed POI set.
type Oracle = core.Oracle

// A2AOracle answers distance queries between arbitrary surface points
// (paper Appendix C), including the n > N regime (Appendix D). Arbitrary
// points go through QueryPoints; Query answers site-id distances.
type A2AOracle = core.SiteOracle

// DistanceIndex is the shared interface over every query engine: Query /
// QueryBatch by endpoint id, MemoryBytes, Stats, and container
// serialization via EncodeTo.
type DistanceIndex = core.DistanceIndex

// PointIndex is a DistanceIndex that also answers arbitrary-surface-point
// queries (implemented by A2AOracle).
type PointIndex = core.PointIndex

// PathIndex is a DistanceIndex that also reports the surface path behind a
// query (QueryPath) as a polyline of surface points whose summed length
// equals the returned distance. Implemented by every engine: the SE and
// dynamic oracles report the ε-approximate highway path, the A2A oracle
// additionally serves arbitrary points (PointPathIndex), and a sharded
// index routes to its member.
type PathIndex = core.PathIndex

// PointPathIndex is a PathIndex that also reports paths between arbitrary
// surface points and planar coordinates (implemented by A2AOracle).
type PointPathIndex = core.PointPathIndex

// MatrixIndex is a DistanceIndex that answers many-to-many distance
// matrices in one call: QueryMatrix fills a row-major sources×targets
// matrix, computing rows in parallel. Implemented by every engine;
// cmd/seserve exposes it as /v1/matrix.
type MatrixIndex = core.MatrixIndex

// NearestFinder is a DistanceIndex that answers planar nearest-endpoint
// queries (ties break toward the lower id).
type NearestFinder = core.NearestFinder

// NearestKFinder is a NearestFinder that returns the k nearest indexed
// endpoints to a planar point, in ascending (distance, id) order. The
// ordering is exact and deterministic — NearestK(x, y, 1) always agrees
// with Nearest(x, y) — and survives an EncodeTo/Load round trip.
type NearestKFinder = core.NearestKFinder

// Neighbor is one answer of NearestKFinder.NearestK: an endpoint id, its
// surface location, and its planar distance from the query point.
type Neighbor = core.Neighbor

// MemberNeighbor is one answer of ShardedIndex.NearestKAcross: a Neighbor
// tagged with the member that owns its (member-local) id.
type MemberNeighbor = core.MemberNeighbor

// Reachability is a DistanceIndex that answers isochrone queries: Reachable
// lists every indexed endpoint within a surface-distance budget of a
// source, in ascending id order. Membership agrees exactly with Query —
// an endpoint is included iff Query(src, id) ≤ d.
type Reachability = core.Reachability

// Reached is one answer of Reachability.Reachable: an endpoint id, its
// surface location, and its surface distance from the source.
type Reached = core.Reached

// PlanarHull returns the convex hull of the points' planar (x, y)
// projections in counter-clockwise order, starting from the
// lexicographically smallest point. Collinear boundary points are dropped;
// degenerate inputs yield the distinct endpoints (2), the single distinct
// point (1), or nil. Useful for drawing an isochrone contour around
// Reachable's answer.
func PlanarHull(pts []SurfacePoint) []SurfacePoint { return core.PlanarHull(pts) }

// IndexStats is the shared observability surface reported by
// DistanceIndex.Stats.
type IndexStats = core.IndexStats

// Kind tags the concrete engine behind a serialized index container.
type Kind = core.Kind

// Container kind tags.
const (
	KindSE      = core.KindSE
	KindA2A     = core.KindA2A
	KindDynamic = core.KindDynamic
	KindMulti   = core.KindMulti
)

// Options configures oracle construction.
type Options = core.Options

// BuildStats reports construction statistics.
type BuildStats = core.BuildStats

// FractalSpec configures the synthetic terrain generator.
type FractalSpec = gen.FractalSpec

// Selection strategies for the partition tree (§3.2, Implementation
// Detail 1).
const (
	SelectRandom = core.SelectRandom
	SelectGreedy = core.SelectGreedy
)

// Vec3 is a 3-D point (x, y, z).
type Vec3 = geom.Vec3

// NewTerrain builds a terrain from vertices and triangles, validating
// manifoldness.
func NewTerrain(verts []Vec3, faces [][3]int32) (*Terrain, error) {
	return terrain.New(verts, faces)
}

// GenerateFractalTerrain synthesizes a deterministic fractal terrain.
func GenerateFractalTerrain(spec FractalSpec) (*Terrain, error) { return gen.Fractal(spec) }

// GenerateGridTerrain builds a height-field terrain from a row-major height
// grid.
func GenerateGridTerrain(nx, ny int, dx, dy float64, heights []float64) (*Terrain, error) {
	return terrain.NewGrid(nx, ny, dx, dy, heights)
}

// ReadTerrainOFF parses an OFF mesh.
func ReadTerrainOFF(r io.Reader) (*Terrain, error) { return terrain.ReadOFF(r) }

// WriteTerrainOFF writes a terrain as OFF.
func WriteTerrainOFF(w io.Writer, t *Terrain) error { return terrain.WriteOFF(w, t) }

// SampleUniformPOIs samples n POIs uniformly over the terrain extent.
func SampleUniformPOIs(t *Terrain, n int, seed int64) ([]SurfacePoint, error) {
	pois, err := gen.UniformPOIs(t, n, seed)
	if err != nil {
		return nil, err
	}
	return gen.Dedup(pois, 1e-9), nil
}

// VertexPOIs returns every terrain vertex as a POI (the V2V setting).
func VertexPOIs(t *Terrain) []SurfacePoint { return gen.VertexPOIs(t) }

// Build constructs an SE oracle over the POIs using the exact geodesic
// engine. Construction runs its geodesic fan-out on opt.Workers goroutines
// (0 means one per CPU); the resulting oracle is identical for every
// worker count and safe for concurrent Query use.
func Build(t *Terrain, pois []SurfacePoint, opt Options) (*Oracle, error) {
	return core.Build(geodesic.NewExact(t), pois, opt)
}

// BuildA2A constructs the arbitrary-point oracle of Appendix C.
func BuildA2A(t *Terrain, opt Options) (*A2AOracle, error) {
	return core.BuildSiteOracle(geodesic.NewExact(t), t, core.SiteOptions{Options: opt})
}

// DynamicOracle is an SE oracle supporting POI insertion and deletion (the
// paper's stated future work). Queries touching freshly inserted POIs are
// exact; the base index is rebuilt amortized as churn accumulates.
type DynamicOracle = core.DynamicOracle

// BuildDynamic constructs a dynamic SE oracle over the initial POI set.
func BuildDynamic(t *Terrain, pois []SurfacePoint, opt Options) (*DynamicOracle, error) {
	return core.NewDynamicOracle(geodesic.NewExact(t), t, pois, opt)
}

// ShardedIndex is a multi-index container: several named member indexes,
// each with a planar bounding box, served as one unit (and one "multi"-kind
// container file). cmd/seserve routes requests across its members by name
// or by locating coordinates in a member bbox.
type ShardedIndex = core.ShardedIndex

// ShardMember is one named member of a ShardedIndex.
type ShardMember = core.ShardMember

// BuildSharded tiles the terrain's planar bounding box into a shards-tile
// grid and builds one SE oracle per non-empty tile (in parallel across
// tiles; byte-identical output for any opt.Workers). Member ids are local
// to each member.
func BuildSharded(t *Terrain, pois []SurfacePoint, shards int, opt Options) (*ShardedIndex, error) {
	return core.BuildShardedSE(geodesic.NewExact(t), t, pois, shards, opt)
}

// LODOptions configures BuildShardedLOD beyond the per-member Options:
// the total level count (including the fine grid at level 0) and the
// boundary-portal density on shared tile edges.
type LODOptions = core.LODOptions

// DefaultPortalsPerEdge is the boundary-portal density used when
// LODOptions.PortalsPerEdge is zero.
const DefaultPortalsPerEdge = core.DefaultPortalsPerEdge

// PortalLink is one boundary portal shared by two adjacent fine tiles of a
// hierarchical sharded index: the same surface point indexed by both
// members, the seam cross-tile queries stitch through.
type PortalLink = core.PortalLink

// CrossMemberError reports a query whose endpoints land in different
// members of a multi index that has no portal or coarse-level route
// between them. It carries both member names; unwrap with errors.As.
type CrossMemberError = core.CrossMemberError

// ErrMemberFault marks a lazily loaded member whose body failed to decode
// on first touch. Queries touching the member keep returning it (sticky);
// test with errors.Is.
var ErrMemberFault = core.ErrMemberFault

// TileStats is the hierarchy / resident-set observability block of a
// sharded index (ShardedIndex.TileStats): member and level counts, portal
// count, resident-set size against its memory budget, fault/eviction
// churn, and the cross-tile routing split.
type TileStats = core.TileStats

// ShardedBuildSummary reports what WriteSharded streamed: fine and coarse
// member counts, portal links, and the global id space size.
type ShardedBuildSummary = core.ShardedBuildSummary

// BuildShardedLOD is BuildSharded with a level-of-detail hierarchy: K-1
// coarse A2A members above the fine tile grid and boundary portals on every
// shared tile edge, so queries between tiles answer through portal
// stitching (short range) or a coarse member (long range) instead of
// failing. The result carries a global id space — the fine members' POIs
// concatenated in manifest order — addressable directly via Query.
func BuildShardedLOD(t *Terrain, pois []SurfacePoint, shards int, opt LODOptions) (*ShardedIndex, error) {
	return core.BuildShardedLOD(geodesic.NewExact(t), t, pois, shards, opt)
}

// WriteSharded builds the same container BuildShardedLOD + EncodeTo would
// produce, but streams each member to w as it is built and drops it before
// the next starts, so peak memory is one tile rather than the whole
// container. The output bytes are identical to the resident path. flat
// selects the zero-parse flat member layout.
func WriteSharded(w io.Writer, t *Terrain, pois []SurfacePoint, shards int, opt LODOptions, flat bool) (ShardedBuildSummary, error) {
	return core.WriteSharded(w, geodesic.NewExact(t), t, pois, shards, opt, flat)
}

// Load reads any serialized index container (written with EncodeTo) and
// returns the concrete engine behind the DistanceIndex interface — an
// *Oracle, *A2AOracle or *DynamicOracle according to the container's kind
// tag. It also accepts the legacy bare-oracle streams Oracle.Encode wrote
// before the container format existed.
func Load(r io.Reader) (DistanceIndex, error) { return core.Load(r) }

// LoadFile opens path and Loads the index it contains.
func LoadFile(path string) (DistanceIndex, error) { return core.LoadFile(path) }

// LoadOracle reads a serialized SE oracle (legacy stream or SE-kind
// container).
//
// Deprecated: use Load, which handles every index kind and returns the
// right concrete type.
func LoadOracle(r io.Reader) (*Oracle, error) { return core.Decode(r) }

// ExactDistance computes the exact geodesic distance between two surface
// points with the window-propagation SSAD engine. For repeated queries,
// build an Oracle instead.
func ExactDistance(t *Terrain, s, d SurfacePoint) float64 {
	eng := geodesic.NewExact(t)
	return eng.DistancesTo(s, []SurfacePoint{d}, geodesic.Stop{CoverTargets: true})[0]
}

// ExactDistances computes exact geodesic distances from one source to many
// targets with a single SSAD run.
func ExactDistances(t *Terrain, s SurfacePoint, targets []SurfacePoint) []float64 {
	eng := geodesic.NewExact(t)
	return eng.DistancesTo(s, targets, geodesic.Stop{CoverTargets: true})
}

// ExactPath computes the exact geodesic path between two surface points:
// a polyline from s to d whose summed segment length (also returned)
// matches ExactDistance for the same pair. For repeated path queries, build
// an Oracle and use QueryPath.
func ExactPath(t *Terrain, s, d SurfacePoint) ([]SurfacePoint, float64, error) {
	return geodesic.NewExact(t).PathTo(s, d)
}

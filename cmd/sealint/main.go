// Command sealint runs the project's static-analysis suite
// (internal/analysis): five analyzers that turn the repo's load-bearing
// invariants into build failures —
//
//	mapiter      deterministic encodes: no order-sensitive state from map iteration
//	hotpath      //sealint:hotpath functions contain no allocating constructs
//	marshalfirst serving layer marshals JSON before committing a status
//	ctxward      serving code calls the Ctx variants so deadlines propagate
//	atomicfield  no mixed atomic/plain access to a field
//
// Usage:
//
//	sealint [-analyzers=a,b,...] [packages]
//	sealint -list-hotpath [packages]
//	sealint -escape-check=FILE [packages]
//
// The default package pattern is ./... and the exit status is non-zero
// when any diagnostic survives the //sealint:ignore filter. -list-hotpath
// prints every annotated hot function as "file\tstart\tend\tname".
// -escape-check reads `go build -gcflags=-m` output from FILE ("-" for
// stdin) and fails on compiler-proved heap escapes inside annotated
// functions; scripts/escape_gate.sh is the usual driver.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"seoracle/internal/analysis"
)

func main() {
	var (
		names       = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		listHotpath = flag.Bool("list-hotpath", false, "print //sealint:hotpath functions and exit")
		escapeCheck = flag.String("escape-check", "", "read `go build -gcflags=-m` output from FILE (- for stdin) and fail on hot-path escapes")
	)
	flag.Usage = usage
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	switch {
	case *listHotpath:
		os.Exit(runListHotpath(patterns))
	case *escapeCheck != "":
		os.Exit(runEscapeCheck(*escapeCheck, patterns))
	default:
		os.Exit(runCheck(*names, patterns))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: sealint [-analyzers=a,b] [-list-hotpath] [-escape-check=FILE] [packages]\n\nanalyzers:\n")
	for _, a := range analysis.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

// runCheck loads the packages and applies the (selected) analyzer suite.
func runCheck(names string, patterns []string) int {
	suite := analysis.Analyzers()
	if names != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, n := range strings.Split(names, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "sealint: unknown analyzer %q\n", n)
				return 2
			}
			suite = append(suite, a)
		}
	}
	pkgs, err := analysis.LoadPackages(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sealint: %v\n", err)
		return 2
	}
	bad := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
		}
		bad += len(diags)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "sealint: %d invariant violations\n", bad)
		return 1
	}
	return 0
}

// runListHotpath prints the annotated hot functions as TSV.
func runListHotpath(patterns []string) int {
	funcs, err := analysis.HotpathFuncs(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sealint: %v\n", err)
		return 2
	}
	for _, f := range funcs {
		fmt.Printf("%s\t%d\t%d\t%s\n", f.File, f.StartLine, f.EndLine, f.Name)
	}
	return 0
}

// runEscapeCheck joins compiler escape output against the hotpath
// annotations.
func runEscapeCheck(file string, patterns []string) int {
	var in io.Reader = os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealint: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	violations, funcs, err := analysis.EscapeCheck(in, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sealint: %v\n", err)
		return 2
	}
	if len(funcs) == 0 {
		fmt.Fprintf(os.Stderr, "sealint: no //sealint:hotpath functions in %s — nothing to gate\n", strings.Join(patterns, " "))
		return 2
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "sealint: %d heap escapes in hotpath functions (%d functions gated)\n", len(violations), len(funcs))
		return 1
	}
	fmt.Fprintf(os.Stderr, "sealint: escape gate clean: %d hotpath functions, 0 escapes\n", len(funcs))
	return 0
}

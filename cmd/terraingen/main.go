// Command terraingen synthesizes terrain datasets (or converts existing OFF
// meshes) and samples POI sets, writing an OFF mesh plus a POI file that
// sebuild and sequery consume.
//
// The POI file format is one POI per line: "face u v w" (barycentric
// coordinates in the given face) with '#' comments.
//
// Usage:
//
//	terraingen -out terrain.off -pois pois.txt [-nx 65] [-ny 65] [-dx 10]
//	           [-amp 100] [-npoi 100] [-kind fractal|hills|plane]
//	           [-poikind uniform|clustered|vertices] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"seoracle/internal/gen"
	"seoracle/internal/terrain"
)

func main() {
	var (
		out     = flag.String("out", "terrain.off", "output OFF mesh path")
		poisOut = flag.String("pois", "pois.txt", "output POI file path")
		nx      = flag.Int("nx", 65, "grid vertices along x")
		ny      = flag.Int("ny", 65, "grid vertices along y")
		dx      = flag.Float64("dx", 10, "grid spacing (meters)")
		amp     = flag.Float64("amp", 100, "vertical relief (meters)")
		npoi    = flag.Int("npoi", 100, "number of POIs")
		kind    = flag.String("kind", "fractal", "terrain kind: fractal, hills or plane")
		poikind = flag.String("poikind", "uniform", "POI sampling: uniform, clustered or vertices")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var m *terrain.Mesh
	var err error
	switch *kind {
	case "fractal":
		m, err = gen.Fractal(gen.FractalSpec{NX: *nx, NY: *ny, CellDX: *dx, Amp: *amp, Seed: *seed})
	case "hills":
		m, err = gen.Hills(*nx, *ny, *dx, 8, *amp, *seed)
	case "plane":
		m, err = gen.Plane(*nx, *ny, *dx)
	default:
		err = fmt.Errorf("unknown terrain kind %q", *kind)
	}
	if err != nil {
		fatal("generating terrain: %v", err)
	}

	var pois []terrain.SurfacePoint
	switch *poikind {
	case "uniform":
		pois, err = gen.UniformPOIs(m, *npoi, *seed+1)
	case "clustered":
		pois, err = gen.ClusteredPOIs(m, *npoi, 4, 0.05, *seed+1)
	case "vertices":
		pois = gen.VertexPOIs(m)
	default:
		err = fmt.Errorf("unknown POI kind %q", *poikind)
	}
	if err != nil {
		fatal("generating POIs: %v", err)
	}
	pois = gen.Dedup(pois, 1e-9)

	fo, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	if err := terrain.WriteOFF(fo, m); err != nil {
		fatal("writing mesh: %v", err)
	}
	fo.Close()

	fp, err := os.Create(*poisOut)
	if err != nil {
		fatal("%v", err)
	}
	if err := terrain.WritePOIs(fp, m, pois); err != nil {
		fatal("writing POIs: %v", err)
	}
	fp.Close()

	st := m.ComputeStats()
	fmt.Printf("terrain: %d vertices, %d faces, relief %.1f m -> %s\n",
		st.NumVerts, st.NumFaces, st.BBoxMax.Z-st.BBoxMin.Z, *out)
	fmt.Printf("POIs: %d -> %s\n", len(pois), *poisOut)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "terraingen: "+format+"\n", args...)
	os.Exit(1)
}

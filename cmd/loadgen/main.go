// Command loadgen is an open-loop HTTP load generator for seserve: it fires
// requests at a fixed rate regardless of how fast responses come back (the
// honest way to measure an overloaded server — a closed loop slows down
// with the victim and hides the queueing) and reports the latency
// distribution with a status-class breakdown.
//
// Open loop means coordinated omission cannot flatter the numbers: a
// request scheduled for tick N is launched at tick N even if the previous
// hundred are still in flight. Shed responses (429) and deadline 503s are
// first-class outcomes, counted separately from transport errors — when
// rehearsing overload, "the server shed cleanly" is the success condition.
//
// Usage:
//
//	loadgen -url http://localhost:8080/v1/query?s=0&t=1 [-rate 200] [-duration 10s]
//	        [-timeout 2s] [-json]
//
// The exit status is 0 as long as the run completed; judging the numbers
// is the caller's job (scripts/chaos_smoke.sh asserts on the JSON form).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// result is one request's outcome: its latency and HTTP status (0 for a
// transport failure).
type result struct {
	latency time.Duration
	status  int
}

// report is the machine-readable summary -json emits.
type report struct {
	Requests   int64   `json:"requests"`
	Sent       int64   `json:"sent"`
	OK         int64   `json:"ok"`          // 2xx
	Shed       int64   `json:"shed"`        // 429
	Unavail    int64   `json:"unavailable"` // 503
	ClientErr  int64   `json:"client_errors"`
	ServerErr  int64   `json:"server_errors"` // 5xx except 503
	Transport  int64   `json:"transport_errors"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
	DurationS  float64 `json:"duration_s"`
	TargetRate float64 `json:"target_rate"`
}

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080/healthz", "target URL (GET)")
		rate     = flag.Float64("rate", 100, "requests per second (open loop)")
		duration = flag.Duration("duration", 5*time.Second, "how long to fire")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-request client timeout")
		asJSON   = flag.Bool("json", false, "emit the summary as one JSON object")
	)
	flag.Parse()
	if *rate <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -rate must be > 0")
		os.Exit(1)
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}

	interval := time.Duration(float64(time.Second) / *rate)
	total := int64(float64(*duration) / float64(interval))
	if total < 1 {
		total = 1
	}

	var (
		mu      sync.Mutex
		results []result
		wg      sync.WaitGroup
		sent    atomic.Int64
	)
	start := time.Now()
	ticker := time.NewTicker(interval)
	for i := int64(0); i < total; i++ {
		<-ticker.C
		wg.Add(1)
		sent.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			status := 0
			resp, err := client.Get(*url)
			if err == nil {
				status = resp.StatusCode
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			r := result{latency: time.Since(t0), status: status}
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		}()
	}
	ticker.Stop()
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(results, sent.Load(), elapsed, *rate)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: encoding report: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("loadgen: %d requests in %v (target %.0f/s)\n", rep.Sent, elapsed.Round(time.Millisecond), *rate)
	fmt.Printf("  2xx %d | 429 shed %d | 503 unavailable %d | 4xx %d | 5xx %d | transport %d\n",
		rep.OK, rep.Shed, rep.Unavail, rep.ClientErr, rep.ServerErr, rep.Transport)
	fmt.Printf("  latency p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
		rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.MaxMs)
}

// summarize folds raw results into the report: counts by status class and
// the latency percentiles over every completed request (shed and failed
// ones included — their latency is the client's experienced latency).
func summarize(results []result, sent int64, elapsed time.Duration, rate float64) report {
	rep := report{Sent: sent, Requests: int64(len(results)), DurationS: elapsed.Seconds(), TargetRate: rate}
	lats := make([]time.Duration, 0, len(results))
	for _, r := range results {
		lats = append(lats, r.latency)
		switch {
		case r.status == 0:
			rep.Transport++
		case r.status >= 200 && r.status < 300:
			rep.OK++
		case r.status == http.StatusTooManyRequests:
			rep.Shed++
		case r.status == http.StatusServiceUnavailable:
			rep.Unavail++
		case r.status >= 400 && r.status < 500:
			rep.ClientErr++
		default:
			rep.ServerErr++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	if len(lats) > 0 {
		rep.P50Ms = ms(percentile(lats, 0.50))
		rep.P95Ms = ms(percentile(lats, 0.95))
		rep.P99Ms = ms(percentile(lats, 0.99))
		rep.MaxMs = ms(lats[len(lats)-1])
	}
	return rep
}

// percentile picks the nearest-rank percentile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

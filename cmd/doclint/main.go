// Command doclint enforces doc comments on the exported surface of the
// packages it is pointed at. Every exported type, function, method,
// constant and variable declared in a non-test file must carry a doc
// comment; `make lint` (and so CI) runs it over the public seoracle
// package, the core engine and the serving layer, keeping the documented
// surface honest as it grows.
//
// Usage:
//
//	doclint [package-dir ...]
//
// With no arguments, the current directory is linted. The exit status is
// non-zero when any exported declaration is undocumented.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	bad := 0
	for _, dir := range dirs {
		missing, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported declarations lack doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file in dir and returns one
// "file:line: message" entry per undocumented exported declaration.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// exportedReceiver reports whether a function is free-standing or a method
// on an exported type — methods on unexported types are not part of the
// public surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// lintGenDecl checks a type/const/var declaration group: each exported
// name needs a doc comment either on its own spec or on the group.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	what := map[token.Token]string{token.TYPE: "type", token.CONST: "constant", token.VAR: "variable"}[d.Tok]
	if what == "" {
		return // import groups
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), what, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.Name == "_" || !name.IsExported() {
					continue
				}
				if d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), what, name.Name)
				}
			}
		}
	}
}

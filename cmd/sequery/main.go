// Command sequery loads a serialized SE oracle and answers POI-to-POI
// distance queries, either from the command line or as a batch from stdin
// ("s t" id pairs, one per line).
//
// Usage:
//
//	sequery -oracle oracle.se -s 3 -t 17
//	sequery -oracle oracle.se -batch < pairs.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"seoracle/internal/core"
)

func main() {
	var (
		oraclePath = flag.String("oracle", "oracle.se", "serialized oracle")
		s          = flag.Int("s", -1, "source POI id")
		t          = flag.Int("t", -1, "target POI id")
		batch      = flag.Bool("batch", false, "read 's t' pairs from stdin")
		naive      = flag.Bool("naive", false, "use the O(h^2) naive query")
	)
	flag.Parse()

	f, err := os.Open(*oraclePath)
	if err != nil {
		fatal("%v", err)
	}
	oracle, err := core.Decode(f)
	f.Close()
	if err != nil {
		fatal("loading oracle: %v", err)
	}
	query := oracle.Query
	if *naive {
		query = oracle.QueryNaive
	}

	if *batch {
		sc := bufio.NewScanner(os.Stdin)
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		n := 0
		start := time.Now()
		for sc.Scan() {
			var a, b int32
			if _, err := fmt.Sscan(sc.Text(), &a, &b); err != nil {
				fatal("bad query line %q: %v", sc.Text(), err)
			}
			d, err := query(a, b)
			if err != nil {
				fatal("query: %v", err)
			}
			fmt.Fprintf(w, "%g\n", d)
			n++
		}
		el := time.Since(start)
		fmt.Fprintf(os.Stderr, "%d queries in %v (%.3f us/query)\n",
			n, el.Round(time.Microsecond), float64(el.Nanoseconds())/1000/float64(max(n, 1)))
		return
	}
	if *s < 0 || *t < 0 {
		fatal("need -s and -t (or -batch)")
	}
	d, err := query(int32(*s), int32(*t))
	if err != nil {
		fatal("query: %v", err)
	}
	fmt.Printf("d(%d,%d) = %g (eps=%g, h=%d)\n", *s, *t, d, oracle.Epsilon(), oracle.Height())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "sequery: "+format+"\n", args...)
	os.Exit(1)
}

// Command sequery loads a serialized index container of any kind (se, a2a,
// dynamic — or a legacy bare oracle stream) and answers distance queries:
// from the command line by endpoint id or planar coordinates, as a batch
// from stdin ("s t" id pairs, one per line), or as an in-process throughput
// benchmark over random pairs. With -path it reports the surface path
// behind the answer as a GeoJSON LineString Feature on stdout. The PR 6
// workload modes mirror the serving layer's endpoints: -matrix prints a
// many-to-many distance matrix, -k lists the k nearest endpoints to a
// planar point, and -isochrone lists every endpoint within a surface
// distance budget (as GeoJSON with -geojson, contour included).
//
// Usage:
//
//	sequery -oracle index.sedx -s 3 -t 17
//	sequery -oracle index.sedx -path -s 3 -t 17                (GeoJSON path)
//	sequery -oracle index.sedx -sx 10 -sy 20 -tx 400 -ty 380   (a2a kinds)
//	sequery -oracle index.sedx -path -xy -sx 10 -sy 20 -tx 400 -ty 380
//	sequery -oracle index.sedx -batch < pairs.txt
//	sequery -oracle index.sedx -bench 100000
//	sequery -oracle multi.sedx -index tile-0-0 -s 3 -t 17      (multi kinds)
//	sequery -oracle index.sedx -matrix -sources 0,1,2 -targets 3,4
//	sequery -oracle index.sedx -k 5 -sx 10 -sy 20              (k nearest)
//	sequery -oracle index.sedx -isochrone 150 -s 3             (reachability)
//	sequery -oracle index.sedx -isochrone 150 -s 3 -geojson    (with contour)
//
// A multi (sharded) container holds several member indexes with
// member-local ids; pick one with -index (running without it lists the
// member names). A hierarchical multi (built with sebuild -lod) also
// answers without -index through its global id space — cross-tile pairs
// stitch through boundary portals or the coarse level transparently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"seoracle/internal/core"
	"seoracle/internal/terrain"
)

func main() {
	var (
		oraclePath = flag.String("oracle", "oracle.se", "serialized index container")
		indexName  = flag.String("index", "", "member name to query inside a multi container")
		s          = flag.Int("s", -1, "source endpoint id")
		t          = flag.Int("t", -1, "target endpoint id")
		sx         = flag.Float64("sx", 0, "source x (with -sy; a2a kinds)")
		sy         = flag.Float64("sy", 0, "source y")
		tx         = flag.Float64("tx", 0, "target x (with -ty; a2a kinds)")
		ty         = flag.Float64("ty", 0, "target y")
		xy         = flag.Bool("xy", false, "query by planar coordinates (-sx -sy -tx -ty)")
		path       = flag.Bool("path", false, "report the surface path as a GeoJSON LineString (with -s/-t or -xy)")
		batch      = flag.Bool("batch", false, "read 's t' id pairs from stdin")
		naive      = flag.Bool("naive", false, "use the O(h^2) naive query (se kind)")
		benchN     = flag.Int("bench", 0, "benchmark: time QueryBatch over this many random pairs")
		benchSeed  = flag.Int64("bench-seed", 1, "random seed for -bench pair generation")
		matrix     = flag.Bool("matrix", false, "print the row-major -sources × -targets distance matrix")
		sources    = flag.String("sources", "", "comma-separated source ids for -matrix")
		targets    = flag.String("targets", "", "comma-separated target ids for -matrix")
		k          = flag.Int("k", 0, "list the k nearest endpoints to (-sx, -sy)")
		isoD       = flag.Float64("isochrone", -1, "list endpoints within this surface distance of -s")
		geojson    = flag.Bool("geojson", false, "emit -isochrone as a GeoJSON FeatureCollection with its convex-hull contour")
	)
	flag.Parse()

	idx, err := core.LoadFile(*oraclePath)
	if err != nil {
		fatal("loading index: %v", err)
	}
	if sh, ok := idx.(*core.ShardedIndex); ok {
		if *indexName == "" {
			// A hierarchical multi routes a global id space: queries stay
			// on the root index and cross-tile pairs stitch transparently.
			// A legacy multi has only member-local ids, so -index is
			// mandatory there.
			if !sh.SupportsGlobal() {
				fatal("%s is a multi container with %d members (%s); pick one with -index",
					*oraclePath, sh.NumMembers(), strings.Join(sh.MemberNames(), ", "))
			}
		} else {
			m, ok := sh.Member(*indexName)
			if !ok {
				fatal("no member named %q in %s (members: %s)",
					*indexName, *oraclePath, strings.Join(sh.MemberNames(), ", "))
			}
			idx = m.Index
		}
	} else if *indexName != "" {
		fatal("-index addresses members of a multi container; %s holds a single %s index",
			*oraclePath, idx.Stats().Kind)
	}
	st := idx.Stats()
	query := idx.Query
	if *naive {
		oracle, ok := idx.(*core.Oracle)
		if !ok {
			fatal("-naive needs an se-kind index, this file holds %s", st.Kind)
		}
		query = oracle.QueryNaive
	}

	if *benchN > 0 {
		bench(idx, *benchN, *benchSeed, *naive)
		return
	}
	if *matrix {
		runMatrix(idx, *sources, *targets)
		return
	}
	if *k > 0 {
		runNearestK(idx, *sx, *sy, *k)
		return
	}
	if *isoD >= 0 {
		if *s < 0 {
			fatal("-isochrone needs a source id (-s)")
		}
		runIsochrone(idx, int32(*s), *isoD, *geojson)
		return
	}
	if *path {
		var (
			pts []terrain.SurfacePoint
			d   float64
			err error
		)
		if *xy {
			pp, ok := idx.(core.PointPathIndex)
			if !ok {
				fatal("coordinate path queries need an a2a-kind index, this file holds %s", st.Kind)
			}
			pts, d, err = pp.QueryPathXY(*sx, *sy, *tx, *ty)
		} else {
			if *s < 0 || *t < 0 {
				fatal("-path needs -s and -t (or -xy with coordinates)")
			}
			pi, ok := idx.(core.PathIndex)
			if !ok {
				fatal("index kind %s cannot report paths", st.Kind)
			}
			pts, d, err = pi.QueryPath(int32(*s), int32(*t))
		}
		if err != nil {
			fatal("path: %v", err)
		}
		if err := writeGeoJSON(os.Stdout, pts, d, st.Kind.String()); err != nil {
			fatal("encoding path: %v", err)
		}
		fmt.Fprintf(os.Stderr, "path: %d vertices, length %g (kind=%s, eps=%g)\n",
			len(pts), d, st.Kind, st.Epsilon)
		return
	}
	if *xy {
		pt, ok := idx.(core.PointIndex)
		if !ok {
			fatal("coordinate queries need an a2a-kind index, this file holds %s", st.Kind)
		}
		d, err := pt.QueryXY(*sx, *sy, *tx, *ty)
		if err != nil {
			fatal("query: %v", err)
		}
		fmt.Printf("d((%g,%g),(%g,%g)) = %g (kind=%s, eps=%g)\n", *sx, *sy, *tx, *ty, d, st.Kind, st.Epsilon)
		return
	}
	if *batch {
		sc := bufio.NewScanner(os.Stdin)
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		n := 0
		start := time.Now()
		for sc.Scan() {
			var a, b int32
			if _, err := fmt.Sscan(sc.Text(), &a, &b); err != nil {
				fatal("bad query line %q: %v", sc.Text(), err)
			}
			d, err := query(a, b)
			if err != nil {
				fatal("query: %v", err)
			}
			fmt.Fprintf(w, "%g\n", d)
			n++
		}
		el := time.Since(start)
		fmt.Fprintf(os.Stderr, "%d queries in %v (%.3f us/query)\n",
			n, el.Round(time.Microsecond), float64(el.Nanoseconds())/1000/float64(max(n, 1)))
		return
	}
	if *s < 0 || *t < 0 {
		fatal("need -s and -t (or -batch, -xy, -bench)")
	}
	d, err := query(int32(*s), int32(*t))
	if err != nil {
		fatal("query: %v", err)
	}
	fmt.Printf("d(%d,%d) = %g (kind=%s, eps=%g, h=%d)\n", *s, *t, d, st.Kind, st.Epsilon, st.Height)
}

// bench times the query path over n random endpoint pairs: the
// zero-allocation QueryBatch serving shape by default, or a QueryNaive loop
// under -naive. It runs whole passes over one pair set with a preallocated
// destination until at least a second has elapsed, then reports per-query
// latency and throughput.
func bench(idx core.DistanceIndex, n int, seed int64, naive bool) {
	st := idx.Stats()
	rng := rand.New(rand.NewSource(seed))
	// The valid id space is [0, Points) for dense kinds; a dynamic index
	// with churn history has tombstoned holes, so draw from its live ids.
	var ids []int32
	if d, ok := idx.(*core.DynamicOracle); ok {
		ids = d.LiveIDs()
	} else {
		ids = make([]int32, 0, st.Points)
		for i := 0; i < st.Points; i++ {
			ids = append(ids, int32(i))
		}
	}
	if len(ids) == 0 {
		fatal("bench: index reports no endpoints")
	}
	pairs := make([][2]int32, n)
	for i := range pairs {
		pairs[i] = [2]int32{ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]}
	}
	dst := make([]float64, len(pairs))
	var oracle *core.Oracle
	if naive {
		oracle = idx.(*core.Oracle) // checked by the caller
	}
	onePass := func() error {
		if naive {
			for _, p := range pairs {
				d, err := oracle.QueryNaive(p[0], p[1])
				if err != nil {
					return err
				}
				dst[0] = d // keep the call observable
			}
			return nil
		}
		_, err := idx.QueryBatch(pairs, dst)
		return err
	}
	// Untimed warmup pass: page in the oracle and validate every pair.
	if err := onePass(); err != nil {
		fatal("bench: %v", err)
	}
	var (
		queries int
		passes  int
		start   = time.Now()
	)
	for time.Since(start) < time.Second {
		if err := onePass(); err != nil {
			fatal("bench: %v", err)
		}
		queries += len(pairs)
		passes++
	}
	el := time.Since(start)
	perQuery := float64(el.Nanoseconds()) / float64(queries)
	mode := "batch"
	if naive {
		mode = "naive"
	}
	fmt.Printf("mode=%s pairs=%d passes=%d elapsed=%v\n", mode, len(pairs), passes, el.Round(time.Millisecond))
	fmt.Printf("%.1f ns/query, %.0f queries/sec (kind=%s, eps=%g, h=%d, points=%d)\n",
		perQuery, 1e9/perQuery, st.Kind, st.Epsilon, st.Height, st.Points)
}

// parseIDs splits a comma-separated id list ("0,1,2") into int32 ids.
func parseIDs(flagName, list string) []int32 {
	if list == "" {
		fatal("-matrix needs -sources and -targets (comma-separated ids); -%s is empty", flagName)
	}
	parts := strings.Split(list, ",")
	ids := make([]int32, len(parts))
	for i, p := range parts {
		var id int32
		if _, err := fmt.Sscan(strings.TrimSpace(p), &id); err != nil {
			fatal("bad id %q in -%s: %v", p, flagName, err)
		}
		ids[i] = id
	}
	return ids
}

// runMatrix prints the sources × targets distance matrix, one row per
// source, tab-separated — the CLI twin of /v1/matrix.
func runMatrix(idx core.DistanceIndex, sourceList, targetList string) {
	mi, ok := idx.(core.MatrixIndex)
	if !ok {
		fatal("index kind %s cannot answer matrix queries", idx.Stats().Kind)
	}
	srcs := parseIDs("sources", sourceList)
	tgts := parseIDs("targets", targetList)
	dst, err := mi.QueryMatrix(srcs, tgts, nil)
	if err != nil {
		fatal("matrix: %v", err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := range srcs {
		for j := range tgts {
			if j > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprintf(w, "%g", dst[i*len(tgts)+j])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(os.Stderr, "matrix: %d×%d cells (kind=%s, eps=%g)\n",
		len(srcs), len(tgts), idx.Stats().Kind, idx.Stats().Epsilon)
}

// runNearestK lists the k nearest indexed endpoints to a planar point in
// ascending (distance, id) order — the CLI twin of /v1/nearest?k=N.
func runNearestK(idx core.DistanceIndex, x, y float64, k int) {
	nk, ok := idx.(core.NearestKFinder)
	if !ok {
		fatal("index kind %s cannot answer nearest-k queries", idx.Stats().Kind)
	}
	ns, err := nk.NearestK(x, y, k)
	if err != nil {
		fatal("nearest: %v", err)
	}
	for _, n := range ns {
		fmt.Printf("id=%d d=%g at=(%g,%g,%g)\n", n.ID, n.Planar, n.At.P.X, n.At.P.Y, n.At.P.Z)
	}
	fmt.Fprintf(os.Stderr, "nearest: %d of k=%d endpoints to (%g,%g) (kind=%s)\n",
		len(ns), k, x, y, idx.Stats().Kind)
}

// runIsochrone lists every indexed endpoint within surface distance d of
// src — plain "id distance x y z" lines, or (with -geojson) the same
// FeatureCollection /v1/isochrone serves: a convex-hull contour feature
// followed by one Point feature per reached endpoint.
func runIsochrone(idx core.DistanceIndex, src int32, d float64, geojson bool) {
	ri, ok := idx.(core.Reachability)
	if !ok {
		fatal("index kind %s cannot answer reachability queries", idx.Stats().Kind)
	}
	reached, err := ri.Reachable(src, d)
	if err != nil {
		fatal("isochrone: %v", err)
	}
	if geojson {
		if err := writeIsochroneGeoJSON(os.Stdout, src, d, reached); err != nil {
			fatal("encoding isochrone: %v", err)
		}
	} else {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, rc := range reached {
			fmt.Fprintf(w, "%d %g %g %g %g\n", rc.ID, rc.Distance, rc.At.P.X, rc.At.P.Y, rc.At.P.Z)
		}
	}
	fmt.Fprintf(os.Stderr, "isochrone: %d endpoints within %g of %d (kind=%s)\n",
		len(reached), d, src, idx.Stats().Kind)
}

// writeIsochroneGeoJSON emits the FeatureCollection shape /v1/isochrone
// serves: the planar convex hull of the reached endpoints as the contour
// (Polygon ≥ 3 hull vertices, LineString for 2, Point for 1) plus one
// Point feature per reached endpoint.
func writeIsochroneGeoJSON(w *os.File, src int32, d float64, reached []core.Reached) error {
	pts := make([]terrain.SurfacePoint, len(reached))
	for i, rc := range reached {
		pts[i] = rc.At
	}
	hull := core.PlanarHull(pts)
	coord := func(p terrain.SurfacePoint) [3]float64 { return [3]float64{p.P.X, p.P.Y, p.P.Z} }
	var geom map[string]any
	switch {
	case len(hull) >= 3:
		ring := make([][3]float64, 0, len(hull)+1)
		for _, h := range hull {
			ring = append(ring, coord(h))
		}
		ring = append(ring, ring[0])
		geom = map[string]any{"type": "Polygon", "coordinates": [][][3]float64{ring}}
	case len(hull) == 2:
		geom = map[string]any{"type": "LineString", "coordinates": [][3]float64{coord(hull[0]), coord(hull[1])}}
	case len(hull) == 1:
		geom = map[string]any{"type": "Point", "coordinates": coord(hull[0])}
	default:
		geom = map[string]any{"type": "GeometryCollection", "geometries": []any{}}
	}
	features := []any{map[string]any{
		"type":       "Feature",
		"geometry":   geom,
		"properties": map[string]any{"role": "contour", "hull_vertices": len(hull)},
	}}
	for _, rc := range reached {
		features = append(features, map[string]any{
			"type":       "Feature",
			"geometry":   map[string]any{"type": "Point", "coordinates": coord(rc.At)},
			"properties": map[string]any{"id": rc.ID, "distance": rc.Distance},
		})
	}
	return json.NewEncoder(w).Encode(map[string]any{
		"type":     "FeatureCollection",
		"features": features,
		"properties": map[string]any{
			"source": src, "max_distance": d, "count": len(reached),
		},
	})
}

// writeGeoJSON emits one GeoJSON Feature whose geometry is the path as a
// LineString of [x, y, z] positions — the same shape /v1/path serves.
func writeGeoJSON(w *os.File, pts []terrain.SurfacePoint, dist float64, kind string) error {
	coords := make([][3]float64, len(pts))
	for i, p := range pts {
		coords[i] = [3]float64{p.P.X, p.P.Y, p.P.Z}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"type": "Feature",
		"geometry": map[string]any{
			"type":        "LineString",
			"coordinates": coords,
		},
		"properties": map[string]any{
			"distance": dist,
			"vertices": len(pts),
			"kind":     kind,
		},
	})
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "sequery: "+format+"\n", args...)
	os.Exit(1)
}

// Command sequery loads a serialized SE oracle and answers POI-to-POI
// distance queries: from the command line, as a batch from stdin ("s t" id
// pairs, one per line), or as an in-process throughput benchmark over random
// pairs.
//
// Usage:
//
//	sequery -oracle oracle.se -s 3 -t 17
//	sequery -oracle oracle.se -batch < pairs.txt
//	sequery -oracle oracle.se -bench 100000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"seoracle/internal/core"
)

func main() {
	var (
		oraclePath = flag.String("oracle", "oracle.se", "serialized oracle")
		s          = flag.Int("s", -1, "source POI id")
		t          = flag.Int("t", -1, "target POI id")
		batch      = flag.Bool("batch", false, "read 's t' pairs from stdin")
		naive      = flag.Bool("naive", false, "use the O(h^2) naive query")
		benchN     = flag.Int("bench", 0, "benchmark: time QueryBatch over this many random pairs")
		benchSeed  = flag.Int64("bench-seed", 1, "random seed for -bench pair generation")
	)
	flag.Parse()

	f, err := os.Open(*oraclePath)
	if err != nil {
		fatal("%v", err)
	}
	oracle, err := core.Decode(f)
	f.Close()
	if err != nil {
		fatal("loading oracle: %v", err)
	}
	query := oracle.Query
	if *naive {
		query = oracle.QueryNaive
	}

	if *benchN > 0 {
		bench(oracle, *benchN, *benchSeed, *naive)
		return
	}
	if *batch {
		sc := bufio.NewScanner(os.Stdin)
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		n := 0
		start := time.Now()
		for sc.Scan() {
			var a, b int32
			if _, err := fmt.Sscan(sc.Text(), &a, &b); err != nil {
				fatal("bad query line %q: %v", sc.Text(), err)
			}
			d, err := query(a, b)
			if err != nil {
				fatal("query: %v", err)
			}
			fmt.Fprintf(w, "%g\n", d)
			n++
		}
		el := time.Since(start)
		fmt.Fprintf(os.Stderr, "%d queries in %v (%.3f us/query)\n",
			n, el.Round(time.Microsecond), float64(el.Nanoseconds())/1000/float64(max(n, 1)))
		return
	}
	if *s < 0 || *t < 0 {
		fatal("need -s and -t (or -batch)")
	}
	d, err := query(int32(*s), int32(*t))
	if err != nil {
		fatal("query: %v", err)
	}
	fmt.Printf("d(%d,%d) = %g (eps=%g, h=%d)\n", *s, *t, d, oracle.Epsilon(), oracle.Height())
}

// bench times the query path over n random POI pairs: the zero-allocation
// QueryBatch serving shape by default, or a QueryNaive loop under -naive. It
// runs whole passes over one pair set with a preallocated destination until
// at least a second has elapsed, then reports per-query latency and
// throughput.
func bench(oracle *core.Oracle, n int, seed int64, naive bool) {
	rng := rand.New(rand.NewSource(seed))
	npoi := int32(oracle.NumPOIs())
	pairs := make([][2]int32, n)
	for i := range pairs {
		pairs[i] = [2]int32{rng.Int31n(npoi), rng.Int31n(npoi)}
	}
	dst := make([]float64, len(pairs))
	onePass := func() error {
		if naive {
			for _, p := range pairs {
				d, err := oracle.QueryNaive(p[0], p[1])
				if err != nil {
					return err
				}
				dst[0] = d // keep the call observable
			}
			return nil
		}
		_, err := oracle.QueryBatch(pairs, dst)
		return err
	}
	// Untimed warmup pass: page in the oracle and validate every pair.
	if err := onePass(); err != nil {
		fatal("bench: %v", err)
	}
	var (
		queries int
		passes  int
		start   = time.Now()
	)
	for time.Since(start) < time.Second {
		if err := onePass(); err != nil {
			fatal("bench: %v", err)
		}
		queries += len(pairs)
		passes++
	}
	el := time.Since(start)
	perQuery := float64(el.Nanoseconds()) / float64(queries)
	mode := "batch"
	if naive {
		mode = "naive"
	}
	fmt.Printf("mode=%s pairs=%d passes=%d elapsed=%v\n", mode, len(pairs), passes, el.Round(time.Millisecond))
	fmt.Printf("%.1f ns/query, %.0f queries/sec (eps=%g, h=%d, pois=%d)\n",
		perQuery, 1e9/perQuery, oracle.Epsilon(), oracle.Height(), oracle.NumPOIs())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "sequery: "+format+"\n", args...)
	os.Exit(1)
}

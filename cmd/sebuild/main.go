// Command sebuild constructs an SE distance oracle from a terrain (OFF) and
// a POI file, serializes it, and prints the construction statistics.
//
// Usage:
//
//	sebuild -terrain terrain.off -pois pois.txt -out oracle.se
//	        [-eps 0.1] [-greedy] [-naive] [-seed 1] [-check] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"seoracle/internal/core"
	"seoracle/internal/gen"
	"seoracle/internal/geodesic"
	"seoracle/internal/terrain"
)

func main() {
	var (
		terrainPath = flag.String("terrain", "terrain.off", "input OFF mesh")
		poisPath    = flag.String("pois", "pois.txt", "input POI file")
		out         = flag.String("out", "oracle.se", "output oracle path")
		eps         = flag.Float64("eps", 0.1, "error parameter epsilon")
		greedy      = flag.Bool("greedy", false, "use the greedy point-selection strategy")
		naive       = flag.Bool("naive", false, "use the naive construction (SE-Naive)")
		seed        = flag.Int64("seed", 1, "random seed")
		check       = flag.Bool("check", false, "verify oracle invariants after construction")
		workers     = flag.Int("workers", 0, "construction worker goroutines (0 = all CPUs; output is identical for any value)")
	)
	flag.Parse()

	ft, err := os.Open(*terrainPath)
	if err != nil {
		fatal("%v", err)
	}
	m, err := terrain.ReadOFF(ft)
	ft.Close()
	if err != nil {
		fatal("reading terrain: %v", err)
	}
	fp, err := os.Open(*poisPath)
	if err != nil {
		fatal("%v", err)
	}
	pois, err := terrain.ReadPOIs(fp, m)
	fp.Close()
	if err != nil {
		fatal("reading POIs: %v", err)
	}
	pois = gen.Dedup(pois, 1e-9)

	opt := core.Options{Epsilon: *eps, Seed: *seed, NaivePairDistances: *naive, Workers: *workers}
	if *greedy {
		opt.Selection = core.SelectGreedy
	}
	start := time.Now()
	oracle, err := core.Build(geodesic.NewExact(m), pois, opt)
	if err != nil {
		fatal("building oracle: %v", err)
	}
	elapsed := time.Since(start)

	if *check {
		if err := oracle.CheckInvariants(); err != nil {
			fatal("invariant check failed: %v", err)
		}
		fmt.Println("invariants: ok")
	}

	fo, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	if err := oracle.Encode(fo); err != nil {
		fatal("writing oracle: %v", err)
	}
	fo.Close()

	st := oracle.Stats()
	fmt.Printf("oracle: %d POIs, eps=%g, h=%d -> %s\n", oracle.NumPOIs(), *eps, oracle.Height(), *out)
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("build: %v total (tree %v, edges %v, pairs %v, hash %v), %d SSADs, %d workers\n",
		elapsed.Round(time.Millisecond), st.TreeTime.Round(time.Millisecond),
		st.EdgeTime.Round(time.Millisecond), st.PairTime.Round(time.Millisecond),
		st.HashTime.Round(time.Millisecond), st.SSADCalls, nw)
	fmt.Printf("size: %d node pairs, %.3f MB\n", oracle.NumPairs(), float64(oracle.MemoryBytes())/(1<<20))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "sebuild: "+format+"\n", args...)
	os.Exit(1)
}

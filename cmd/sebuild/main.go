// Command sebuild constructs a distance index from a terrain (OFF) — an SE
// POI oracle, an arbitrary-point A2A oracle, or a dynamic oracle — and
// serializes it as a self-describing container that sequery and seserve
// load.
//
// Usage:
//
//	sebuild -terrain terrain.off -pois pois.txt -out index.sedx
//	        [-kind se|a2a|dynamic] [-eps 0.1] [-greedy] [-naive]
//	        [-seed 1] [-check] [-workers 0] [-sites-per-edge 0] [-shards 1]
//	        [-lod 0] [-portals-per-edge 0] [-layout flat]
//
// -kind=a2a indexes the terrain itself (every vertex plus per-edge Steiner
// sites), so -pois is not required; se and dynamic index the POI file.
//
// -shards=K (se kind) tiles the terrain's planar bounding box into K tiles,
// builds one SE oracle per non-empty tile in parallel, and writes them as
// one multi container ("tile-<col>-<row>" members with their tile bboxes)
// that seserve routes across by name or coordinates. Output is
// byte-identical for any -workers value. Without -check the container is
// streamed tile by tile — each member is built, encoded and dropped before
// the next, so peak memory is about one tile, not the whole container.
//
// -lod=K (with -shards) adds K-1 coarse levels above the fine tile grid:
// boundary portals are placed on every shared tile edge so short
// cross-tile queries stitch exactly, and each coarse level is one
// terrain-spanning A2A member that answers long-range queries cheaply.
// The result is one hierarchical multi container with a global id space
// (see seserve -mem-budget for serving it larger than RAM).
//
// -layout=flat (se kind, sharded or not) re-lays the built index into the
// zero-parse flat container: seserve then queries it straight from the
// memory-mapped file with O(1) cold start (see seconvert to upgrade
// already-written containers).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"seoracle/internal/core"
	"seoracle/internal/gen"
	"seoracle/internal/geodesic"
	"seoracle/internal/terrain"
)

func main() {
	var (
		terrainPath  = flag.String("terrain", "terrain.off", "input OFF mesh")
		poisPath     = flag.String("pois", "pois.txt", "input POI file (se and dynamic kinds)")
		out          = flag.String("out", "oracle.se", "output index container path")
		kind         = flag.String("kind", "se", "index kind: se (POI oracle), a2a (arbitrary points), dynamic (insert/delete)")
		eps          = flag.Float64("eps", 0.1, "error parameter epsilon")
		greedy       = flag.Bool("greedy", false, "use the greedy point-selection strategy")
		naive        = flag.Bool("naive", false, "use the naive construction (SE-Naive)")
		seed         = flag.Int64("seed", 1, "random seed")
		check        = flag.Bool("check", false, "verify oracle invariants after construction (se kind)")
		workers      = flag.Int("workers", 0, "construction worker goroutines (0 = all CPUs; output is identical for any value)")
		sitesPerEdge = flag.Int("sites-per-edge", 0, "a2a: Steiner sites per mesh edge (0 = derive from eps)")
		shards       = flag.Int("shards", 1, "se: tile the terrain into this many shards and write a multi container")
		lod          = flag.Int("lod", 0, "se sharded: total LOD levels including the fine grid (0 or 1 = flat grid; 2+ adds coarse members and boundary portals)")
		portalsEdge  = flag.Int("portals-per-edge", 0, "se sharded with -lod: boundary portals per shared tile edge (0 = default)")
		layout       = flag.String("layout", "", "container layout: \"\" (decoded sections) or \"flat\" (zero-parse mmap layout; se kind)")
	)
	flag.Parse()

	ft, err := os.Open(*terrainPath)
	if err != nil {
		fatal("%v", err)
	}
	m, err := terrain.ReadOFF(ft)
	ft.Close()
	if err != nil {
		fatal("reading terrain: %v", err)
	}

	opt := core.Options{Epsilon: *eps, Seed: *seed, NaivePairDistances: *naive, Workers: *workers}
	if *greedy {
		opt.Selection = core.SelectGreedy
	}

	readPOIs := func() []terrain.SurfacePoint {
		fp, err := os.Open(*poisPath)
		if err != nil {
			fatal("%v", err)
		}
		pois, err := terrain.ReadPOIs(fp, m)
		fp.Close()
		if err != nil {
			fatal("reading POIs: %v", err)
		}
		return gen.Dedup(pois, 1e-9)
	}

	if *shards > 1 && *kind != "se" {
		fatal("-shards needs -kind=se (got %q)", *kind)
	}
	if *lod > 1 && *shards <= 1 {
		fatal("-lod needs -shards > 1 (one tile has no hierarchy to build)")
	}
	switch *layout {
	case "", "flat":
	default:
		fatal("unknown -layout %q (want \"\" or \"flat\")", *layout)
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}

	start := time.Now()
	var idx core.DistanceIndex
	switch *kind {
	case "se":
		if *shards > 1 {
			lodOpt := core.LODOptions{Options: opt, Levels: *lod, PortalsPerEdge: *portalsEdge}
			if !*check {
				// Streaming build: each tile is built, encoded into the
				// container and dropped before the next starts, so peak
				// memory tracks one tile rather than the whole output. The
				// bytes are identical to the resident path below.
				fo, err := os.Create(*out)
				if err != nil {
					fatal("%v", err)
				}
				sum, err := core.WriteSharded(fo, geodesic.NewExact(m), m, readPOIs(), *shards, lodOpt, *layout == "flat")
				if err != nil {
					fatal("building sharded oracle: %v", err)
				}
				if err := fo.Close(); err != nil {
					fatal("writing index: %v", err)
				}
				fmt.Printf("index: kind=multi, %d points, eps=%g -> %s (streamed)\n", sum.Points, *eps, *out)
				fmt.Printf("shards: %d fine tiles + %d coarse members, %d portals\n",
					sum.FineTiles, sum.CoarseTiles, sum.Portals)
				fmt.Printf("build: %v total, %d workers, peak memory ~ one tile\n",
					time.Since(start).Round(time.Millisecond), nw)
				return
			}
			sh, err := core.BuildShardedLOD(geodesic.NewExact(m), m, readPOIs(), *shards, lodOpt)
			if err != nil {
				fatal("building sharded oracle: %v", err)
			}
			checked := 0
			for _, mm := range sh.Members() {
				// Coarse members are site oracles with their own build-time
				// validation; the SE invariant check covers the fine tiles.
				if o, ok := mm.Index.(*core.Oracle); ok {
					if err := o.CheckInvariants(); err != nil {
						fatal("invariant check failed on shard %s: %v", mm.Name, err)
					}
					checked++
				}
			}
			fmt.Printf("invariants: ok (%d shards)\n", checked)
			idx = sh
			break
		}
		oracle, err := core.Build(geodesic.NewExact(m), readPOIs(), opt)
		if err != nil {
			fatal("building oracle: %v", err)
		}
		if *check {
			if err := oracle.CheckInvariants(); err != nil {
				fatal("invariant check failed: %v", err)
			}
			fmt.Println("invariants: ok")
		}
		idx = oracle
	case "a2a":
		so, err := core.BuildSiteOracle(geodesic.NewExact(m), m, core.SiteOptions{
			Options:      opt,
			SitesPerEdge: *sitesPerEdge,
		})
		if err != nil {
			fatal("building a2a oracle: %v", err)
		}
		idx = so
	case "dynamic":
		d, err := core.NewDynamicOracle(geodesic.NewExact(m), m, readPOIs(), opt)
		if err != nil {
			fatal("building dynamic oracle: %v", err)
		}
		idx = d
	default:
		fatal("unknown -kind %q (want se, a2a or dynamic)", *kind)
	}
	elapsed := time.Since(start)

	if *layout == "flat" {
		flat, err := core.ConvertFlat(idx)
		if err != nil {
			fatal("converting to the flat layout: %v", err)
		}
		idx = flat
	}

	fo, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	if err := idx.EncodeTo(fo); err != nil {
		fatal("writing index: %v", err)
	}
	if err := fo.Close(); err != nil {
		fatal("writing index: %v", err)
	}

	st := idx.Stats()
	fmt.Printf("index: kind=%s, %d points, eps=%g, h=%d -> %s\n", st.Kind, st.Points, st.Epsilon, st.Height, *out)
	if sh, ok := idx.(*core.ShardedIndex); ok {
		for _, mm := range sh.Members() {
			ms := mm.Index.Stats()
			fmt.Printf("shard %s: %d points, %d pairs, bbox [%.6g,%.6g]x[%.6g,%.6g]\n",
				mm.Name, ms.Points, ms.Pairs, mm.BBox.MinX, mm.BBox.MaxX, mm.BBox.MinY, mm.BBox.MaxY)
		}
	}
	if st.Sites > 0 {
		fmt.Printf("sites: %d (%d per edge, spacing %.3g, local threshold %.3g)\n",
			st.Sites, st.SitesPerEdge, st.SiteSpacing, st.LocalThreshold)
	}
	b := st.Build
	fmt.Printf("build: %v total (tree %v, edges %v, pairs %v, hash %v), %d SSADs, %d workers\n",
		elapsed.Round(time.Millisecond), b.TreeTime.Round(time.Millisecond),
		b.EdgeTime.Round(time.Millisecond), b.PairTime.Round(time.Millisecond),
		b.HashTime.Round(time.Millisecond), b.SSADCalls, nw)
	// Flat indexes hold their weight in the zero-parse body (reported as
	// mapped bytes), not the Go heap — count both so -layout=flat doesn't
	// print a near-zero size.
	fmt.Printf("size: %d node pairs, %.3f MB\n", st.Pairs,
		float64(st.MemoryBytes+core.MappedBytesOf(idx))/(1<<20))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "sebuild: "+format+"\n", args...)
	os.Exit(1)
}

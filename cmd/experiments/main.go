// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) on the scaled stand-in datasets. Results are printed as
// aligned text tables and optionally written as CSV files.
//
// Usage:
//
//	experiments [-run all|table1|table2|table3|fig8|fig9|fig10|fig11|fig12|fig13|fig14]
//	            [-full] [-queries N] [-seed S] [-csv DIR] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"seoracle/internal/exp"
)

func main() {
	var (
		run     = flag.String("run", "all", "which experiment to run (comma separated)")
		full    = flag.Bool("full", false, "paper-scale datasets (slower; SF-small gets 1k vertices as in §5.1)")
		queries = flag.Int("queries", 0, "queries per configuration (0 = scale default)")
		seed    = flag.Int64("seed", 42, "base random seed")
		csvDir  = flag.String("csv", "", "directory for CSV output (optional)")
		// Default to sequential builds: the figures compare construction
		// times against single-threaded baselines, so parallel SE builds
		// must be opted into explicitly. Oracle contents (and thus error
		// and size columns) are identical for any worker count.
		workers = flag.Int("workers", 1, "oracle-construction worker goroutines (1 = sequential, paper-comparable build times; 0 = all CPUs)")
		// Profiling hooks for perf work: the experiment sweeps exercise the
		// same build and query paths production does, so a profile of a
		// figure run is a profile of the system.
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal("memprofile: %v", err)
			}
		}()
	}

	cfg := exp.Config{Scale: exp.Quick, Queries: *queries, Seed: *seed, Workers: *workers, Out: os.Stdout}
	if *full {
		cfg.Scale = exp.Full
	}

	type figRunner func(exp.Config) ([]exp.Measurement, error)
	figures := map[string]struct {
		run   figRunner
		xname string
	}{
		"fig8":  {exp.RunFig8, "eps"},
		"fig9":  {exp.RunFig9, "n"},
		"fig10": {exp.RunFig10, "N"},
		"fig11": {exp.RunFig11, "n"},
		"fig12": {exp.RunFig12, "eps"},
		"fig13": {exp.RunFig13, "eps"},
		"fig14": {exp.RunFig14, "eps"},
	}
	tables := map[string]func(exp.Config) error{
		"table1": exp.RunTable1,
		"table2": exp.RunTable2,
		"table3": exp.RunTable3,
	}
	order := []string{"table1", "table2", "table3", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"}

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	for _, name := range order {
		if !want["all"] && !want[name] {
			continue
		}
		if t, ok := tables[name]; ok {
			if err := t(cfg); err != nil {
				fatal("%s: %v", name, err)
			}
			continue
		}
		f := figures[name]
		ms, err := f.run(cfg)
		if err != nil {
			fatal("%s: %v", name, err)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal("csv dir: %v", err)
			}
			path := filepath.Join(*csvDir, name+".csv")
			fh, err := os.Create(path)
			if err != nil {
				fatal("csv: %v", err)
			}
			exp.WriteCSV(fh, f.xname, ms)
			fh.Close()
			fmt.Printf("  wrote %s\n", path)
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}

// Command seconvert rewrites an existing index container into another
// on-disk layout without rebuilding it. Its one conversion today is
// -layout=flat: an se container (or a multi of se shards) is re-laid into
// the zero-parse flat layout, which seserve queries straight from the
// memory-mapped file — O(1) cold start, no decode copies, and a smaller
// file (cold sections are deflated). Answers are bit-identical to the
// decoded layout's.
//
// Usage:
//
//	seconvert -in oracle.sedx -out oracle.flat.sedx [-layout flat]
//
// The input may be any container sebuild writes (legacy bare streams
// included); kinds without a flat form (a2a, dynamic) are rejected. The
// output is written atomically: to a temp file in the destination
// directory, then renamed over -out.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"seoracle/internal/core"
)

func main() {
	var (
		in     = flag.String("in", "", "input index container (any layout)")
		out    = flag.String("out", "", "output container path")
		layout = flag.String("layout", "flat", "target layout (only \"flat\")")
	)
	flag.Parse()

	if *in == "" || *out == "" {
		fatal("need -in and -out")
	}
	if *layout != "flat" {
		fatal("unknown -layout %q (want flat)", *layout)
	}

	idx, err := core.LoadFile(*in)
	if err != nil {
		fatal("loading %s: %v", *in, err)
	}
	inStat, err := os.Stat(*in)
	if err != nil {
		fatal("%v", err)
	}

	flat, err := core.ConvertFlat(idx)
	if err != nil {
		fatal("converting %s: %v", *in, err)
	}

	tmp, err := os.CreateTemp(filepath.Dir(*out), filepath.Base(*out)+".tmp*")
	if err != nil {
		fatal("%v", err)
	}
	if err := flat.EncodeTo(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		fatal("writing flat container: %v", err)
	}
	outSize, err := tmp.Seek(0, 1)
	if err == nil {
		err = tmp.Close()
	}
	if err == nil {
		err = os.Rename(tmp.Name(), *out)
	}
	if err != nil {
		os.Remove(tmp.Name())
		fatal("writing %s: %v", *out, err)
	}

	st := flat.Stats()
	fmt.Printf("converted: kind=%s -> flat, %d points, eps=%g -> %s\n",
		idx.Stats().Kind, st.Points, st.Epsilon, *out)
	fmt.Printf("size: %d -> %d bytes (%.1f%%), %.1f B/point\n",
		inStat.Size(), outSize, 100*float64(outSize)/float64(inStat.Size()),
		float64(outSize)/float64(max(st.Points, 1)))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "seconvert: "+format+"\n", args...)
	os.Exit(1)
}

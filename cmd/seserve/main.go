// Command seserve loads a serialized index container of any kind (se, a2a,
// dynamic) and serves distance queries over an HTTP JSON API. The index is
// immutable once loaded, so queries run concurrently with no locking — and
// because the container carries everything the engine needs (including the
// terrain, for a2a and dynamic kinds), startup performs no geodesic
// computation at all.
//
// A multi (sharded) container serves every member from this one process:
// requests address a member with ?index=<name> or, for coordinate-addressed
// endpoints, by whichever member bbox contains the source point. The
// bounded LRU query cache (-cache, single-flight on misses) deduplicates
// hot repeated queries; hit/miss counters appear in /statsz.
//
// Robustness controls:
//
//	-max-inflight N   shed load beyond N concurrent requests (429 + Retry-After)
//	-deadline D       per-request budget; expired bulk work stops computing (503)
//	-drain D          how long SIGTERM/SIGINT waits for in-flight requests
//	-degraded         serve the healthy members of a partially corrupt multi
//	                  container, quarantining the rest (503 when addressed)
//	-mem-budget N     serve a multi container larger than RAM: members load
//	                  lazily on first touch and an LRU evicts decoded members
//	                  once their heap bytes exceed N (see /statsz "tiles")
//
// SIGHUP (or POST /admin/reload) re-loads the container from disk and swaps
// it in atomically: in-flight requests finish on the old index, new ones
// see the new, and the query cache is invalidated by generation. /readyz
// reports 503 while draining or degraded below quorum so load balancers
// route around the process; /healthz stays pure liveness.
//
// Chaos flags (-chaos-latency, -chaos-error-rate, -chaos-fail-member)
// inject faults for resilience rehearsal — deterministic, loudly logged,
// and inert unless set. See internal/chaos.
//
// Usage:
//
//	seserve -index index.sedx [-addr :8080] [-mmap] [-cache 1024]
//	        [-max-inflight 0] [-deadline 0] [-drain 5s] [-degraded]
//
// Endpoints (see internal/server):
//
//	curl 'localhost:8080/v1/query?s=3&t=17'
//	curl 'localhost:8080/v1/query?index=tile-0-0&s=3&t=17'     (multi kinds)
//	curl 'localhost:8080/v1/query?sx=10&sy=20&tx=400&ty=380'   (a2a kinds)
//	curl -d '{"pairs":[[0,1],[2,3]]}' localhost:8080/v1/batch
//	curl 'localhost:8080/v1/nearest?x=120&y=340'
//	curl localhost:8080/healthz
//	curl localhost:8080/readyz
//	curl localhost:8080/statsz
//	curl -X POST localhost:8080/admin/reload
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seoracle/internal/chaos"
	"seoracle/internal/core"
	"seoracle/internal/server"
)

// observabilityPaths bypass chaos injection, mirroring the serving layer's
// own limiter exemptions: you must be able to watch the fire.
var observabilityPaths = map[string]bool{
	"/healthz":      true,
	"/readyz":       true,
	"/statsz":       true,
	"/admin/reload": true,
}

func main() {
	var (
		indexPath   = flag.String("index", "oracle.se", "serialized index container")
		addr        = flag.String("addr", ":8080", "listen address")
		useMmap     = flag.Bool("mmap", false, "memory-map the container instead of streaming it")
		cacheSize   = flag.Int("cache", 1024, "LRU query cache entries (0 disables caching)")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrent requests before shedding with 429 (0 = unlimited)")
		deadline    = flag.Duration("deadline", 0, "per-request deadline; expired bulk queries answer 503 (0 = none)")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-shutdown budget for in-flight requests")
		degraded    = flag.Bool("degraded", false, "serve a partially corrupt multi container, quarantining broken members")
		memBudget   = flag.Int64("mem-budget", 0, "decoded multi-member heap budget in bytes: members load lazily and evict LRU beyond it (0 = eager)")

		chaosLatency   = flag.Duration("chaos-latency", 0, "CHAOS: add latency to every data request")
		chaosErrorRate = flag.Float64("chaos-error-rate", 0, "CHAOS: fail this fraction of data requests with 503 (deterministic)")
		chaosFail      = flag.String("chaos-fail-member", "", "CHAOS: comma-separated member names to quarantine as if corrupt")
	)
	flag.Parse()
	if *chaosErrorRate < 0 || *chaosErrorRate > 1 {
		fatal("-chaos-error-rate must be in [0,1], got %g", *chaosErrorRate)
	}

	if *memBudget < 0 {
		fatal("-mem-budget must be >= 0 bytes, got %d", *memBudget)
	}

	// load is also the hot-reload path (SIGHUP, POST /admin/reload): every
	// reload honors the same -degraded / -mem-budget / -chaos-fail-member
	// configuration as startup.
	load := func() (core.DistanceIndex, []core.Quarantined, error) {
		idx, quarantined, err := server.LoadIndexOpts(*indexPath, *useMmap,
			core.LoadOptions{Tolerant: *degraded, MemBudget: *memBudget})
		if err != nil {
			return nil, nil, err
		}
		if *chaosFail != "" {
			var injected []core.Quarantined
			idx, injected, err = chaos.FailMembers(idx, strings.Split(*chaosFail, ","))
			if err != nil {
				return nil, nil, err
			}
			quarantined = append(quarantined, injected...)
		}
		return idx, quarantined, nil
	}

	t0 := time.Now()
	idx, quarantined, err := load()
	if err != nil {
		fatal("loading index: %v", err)
	}
	st := idx.Stats()
	// Flat indexes live in the mapping, not the heap; report both sides so
	// a zero-parse load doesn't log as a near-empty index.
	fmt.Printf("seserve: loaded %s index from %s in %v (%d points, eps=%g, %.3f MB heap + %.3f MB mapped)\n",
		st.Kind, *indexPath, time.Since(t0).Round(time.Millisecond),
		st.Points, st.Epsilon, float64(st.MemoryBytes)/(1<<20), float64(st.MappedBytes)/(1<<20))
	if sh, ok := idx.(*core.ShardedIndex); ok {
		fmt.Printf("seserve: %d members: %s\n", sh.NumMembers(), strings.Join(sh.MemberNames(), ", "))
		if ts, ok := sh.TileStats(); ok {
			fmt.Printf("seserve: hierarchy: %d levels, %d portals, %d/%d members resident (budget %d bytes)\n",
				ts.Levels, ts.Portals, ts.Resident, ts.Members, ts.BudgetBytes)
		}
	}
	for _, q := range quarantined {
		fmt.Printf("seserve: DEGRADED: member %q quarantined: %v\n", q.Name, q.Err)
	}

	s := server.NewWithOptions(idx, server.Options{
		CacheSize:   *cacheSize,
		MaxInFlight: *maxInFlight,
		Deadline:    *deadline,
		Quarantined: quarantined,
		Loader:      load,
	})
	handler := s.Handler()
	injector := &chaos.Injector{Latency: *chaosLatency, ErrorRate: *chaosErrorRate}
	if injector.Active() {
		fmt.Printf("seserve: CHAOS ACTIVE: latency=%v error-rate=%g\n", *chaosLatency, *chaosErrorRate)
		handler = injector.Middleware(handler, observabilityPaths)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("seserve: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatal("%v", err)
			}
			return
		case got := <-sig:
			if got == syscall.SIGHUP {
				if gen, err := s.Reload(); err != nil {
					fmt.Fprintf(os.Stderr, "seserve: SIGHUP reload failed (still serving the old index): %v\n", err)
				} else {
					fmt.Printf("seserve: SIGHUP reloaded %s (generation %d, %d quarantined)\n",
						*indexPath, gen, len(s.QuarantinedMembers()))
				}
				continue
			}
			fmt.Printf("seserve: %v, draining for up to %v\n", got, *drain)
			s.SetDraining(true) // /readyz goes 503 so balancers stop routing here
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			err := srv.Shutdown(ctx)
			cancel()
			if err != nil {
				fatal("shutdown: %v", err)
			}
			return
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "seserve: "+format+"\n", args...)
	os.Exit(1)
}

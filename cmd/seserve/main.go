// Command seserve loads a serialized index container of any kind (se, a2a,
// dynamic) and serves distance queries over an HTTP JSON API. The index is
// immutable once loaded, so queries run concurrently with no locking — and
// because the container carries everything the engine needs (including the
// terrain, for a2a and dynamic kinds), startup performs no geodesic
// computation at all.
//
// A multi (sharded) container serves every member from this one process:
// requests address a member with ?index=<name> or, for coordinate-addressed
// endpoints, by whichever member bbox contains the source point. The
// bounded LRU query cache (-cache, single-flight on misses) deduplicates
// hot repeated queries; hit/miss counters appear in /statsz.
//
// Usage:
//
//	seserve -index index.sedx [-addr :8080] [-mmap] [-cache 1024]
//
// Endpoints (see internal/server):
//
//	curl 'localhost:8080/v1/query?s=3&t=17'
//	curl 'localhost:8080/v1/query?index=tile-0-0&s=3&t=17'     (multi kinds)
//	curl 'localhost:8080/v1/query?sx=10&sy=20&tx=400&ty=380'   (a2a kinds)
//	curl -d '{"pairs":[[0,1],[2,3]]}' localhost:8080/v1/batch
//	curl 'localhost:8080/v1/nearest?x=120&y=340'
//	curl localhost:8080/healthz
//	curl localhost:8080/statsz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seoracle/internal/core"
	"seoracle/internal/server"
)

func main() {
	var (
		indexPath = flag.String("index", "oracle.se", "serialized index container")
		addr      = flag.String("addr", ":8080", "listen address")
		useMmap   = flag.Bool("mmap", false, "memory-map the container instead of streaming it")
		cacheSize = flag.Int("cache", 1024, "LRU query cache entries (0 disables caching)")
	)
	flag.Parse()

	t0 := time.Now()
	idx, err := server.LoadIndexFile(*indexPath, *useMmap)
	if err != nil {
		fatal("loading index: %v", err)
	}
	st := idx.Stats()
	fmt.Printf("seserve: loaded %s index from %s in %v (%d points, eps=%g, %.3f MB)\n",
		st.Kind, *indexPath, time.Since(t0).Round(time.Millisecond),
		st.Points, st.Epsilon, float64(st.MemoryBytes)/(1<<20))
	if sh, ok := idx.(*core.ShardedIndex); ok {
		fmt.Printf("seserve: %d members: %s\n", sh.NumMembers(), strings.Join(sh.MemberNames(), ", "))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewWithOptions(idx, server.Options{CacheSize: *cacheSize}).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("seserve: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("%v", err)
		}
	case s := <-sig:
		fmt.Printf("seserve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal("shutdown: %v", err)
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "seserve: "+format+"\n", args...)
	os.Exit(1)
}

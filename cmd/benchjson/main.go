// Command benchjson converts `go test -bench -benchmem` output (stdin) into
// a machine-readable perf-trajectory file. Each invocation appends one
// labeled run to the output JSON, so the file accumulates the project's
// measured history: every perf PR appends its numbers and diffs against the
// runs already recorded (see the "Performance" section of the README for the
// file format).
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | benchjson -label pr2 -o BENCH_perf.json
//	benchjson -check -o BENCH_perf.json   # CI gate: fail when missing/invalid
//
// -check also runs a benchstat-style comparison of the last two recorded
// runs: samples sharing a benchmark name within a run (go test -count=N)
// are pooled into mean ± 95% confidence interval, and a benchmark is
// flagged as a regression only when the intervals are disjoint AND the
// mean moved by more than -margin AND both runs came from the same CPU —
// cross-machine runs differ by ~2× from hardware alone (see ROADMAP), so
// they are compared for information, never gated on.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark line: the standard ns/op, B/op and allocs/op
// columns plus any custom ReportMetric columns (keyed by unit).
type Benchmark struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labeled invocation of the benchmark suite.
type Run struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	Commit     string      `json:"commit,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk trajectory: runs in append order, oldest first.
type File struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

const schema = "seoracle-bench/v1"

func main() {
	var (
		label  = flag.String("label", "local", "label for this run (e.g. the PR name)")
		out    = flag.String("o", "BENCH_perf.json", "trajectory file to append to")
		check  = flag.Bool("check", false, "validate the trajectory file, compare the last two runs, and exit non-zero when the file is missing, unparsable, empty — or records a statistically significant regression")
		margin = flag.Float64("margin", 0.30, "check: minimum relative ns/op increase to call a regression (on top of disjoint confidence intervals)")
	)
	flag.Parse()

	if *check {
		checkTrajectory(*out, *margin)
		return
	}

	run := Run{
		Label:  *label,
		Date:   time.Now().UTC().Format(time.RFC3339),
		Commit: gitCommit(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	sawFail := false
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay tee-able: pass the raw output through
		// `make` pipes without pipefail, so go test's exit code is lost:
		// detect failure from the output instead and refuse to record a
		// partial (or failing) run as a trajectory point.
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") {
			sawFail = true
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			run.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			run.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				run.Benchmarks = append(run.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal("reading stdin: %v", err)
	}
	if sawFail {
		fatal("benchmark run FAILed; not recording it in the trajectory")
	}
	if len(run.Benchmarks) == 0 {
		fatal("no benchmark lines found on stdin (pipe `go test -bench` output in)")
	}

	var file File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fatal("existing %s is not a trajectory file: %v", *out, err)
		}
	} else if !os.IsNotExist(err) {
		fatal("reading %s: %v", *out, err)
	}
	file.Schema = schema
	file.Runs = append(file.Runs, run)

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal("encoding: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended run %q (%d benchmarks) to %s (%d runs total)\n",
		run.Label, len(run.Benchmarks), *out, len(file.Runs))
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkFig8_QuerySE-8   2224640   159.0 ns/op   235.0 ssads   64 B/op   2 allocs/op
//
// The "-8" GOMAXPROCS suffix is stripped from the name so runs on different
// machines stay comparable by name.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}

// summary is the pooled statistic for one benchmark name within one run:
// sample count, mean and the 95% confidence-interval half-width (Student's
// t for small n). With go test -count=1 every name has one sample and the
// interval collapses to zero width — callers must treat n==1 as
// "no spread information", not "perfectly precise".
type summary struct {
	N    int
	Mean float64
	CI   float64
}

// tValue95 approximates the two-sided 95% Student's t critical value for
// n-1 degrees of freedom — exact for the tiny n values -count produces,
// asymptoting to the normal 1.96 above ten samples.
func tValue95(n int) float64 {
	t := []float64{0, 0, 12.71, 4.30, 3.18, 2.78, 2.57, 2.45, 2.36, 2.31, 2.26}
	if n < len(t) {
		return t[n]
	}
	return 1.96 + 9.6/float64(n) // 2.23 at n=11 tapering toward 1.96
}

// summarize pools one run's samples for a single benchmark name.
func summarize(samples []float64) summary {
	n := len(samples)
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(n)
	if n < 2 {
		return summary{N: n, Mean: mean}
	}
	var sq float64
	for _, s := range samples {
		sq += (s - mean) * (s - mean)
	}
	sd := math.Sqrt(sq / float64(n-1))
	return summary{N: n, Mean: mean, CI: tValue95(n) * sd / math.Sqrt(float64(n))}
}

// poolRun groups a run's benchmark lines by name (go test -count=N emits
// one line per repetition) and summarizes each name's ns/op samples.
func poolRun(run Run) map[string]summary {
	byName := map[string][]float64{}
	for _, b := range run.Benchmarks {
		byName[b.Name] = append(byName[b.Name], b.NsPerOp)
	}
	pooled := make(map[string]summary, len(byName))
	for name, samples := range byName {
		pooled[name] = summarize(samples)
	}
	return pooled
}

// compareRuns prints a benchstat-style ns/op comparison of the two most
// recent runs and returns the names that regressed: mean slower by more
// than margin with disjoint confidence intervals. When gate is false
// (single-sample runs or runs from different CPUs, where ~2× differences
// are pure hardware) the table still prints but nothing can regress.
func compareRuns(prev, last Run, margin float64, gate bool) []string {
	old, cur := poolRun(prev), poolRun(last)
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Printf("benchjson: runs %q and %q share no benchmarks; nothing to compare\n", prev.Label, last.Label)
		return nil
	}
	mode := "gating"
	if !gate {
		mode = "informational"
	}
	fmt.Printf("benchjson: %s vs %s ns/op (%s, margin %.0f%%)\n", prev.Label, last.Label, mode, margin*100)
	var regressed []string
	for _, name := range names {
		o, c := old[name], cur[name]
		delta := (c.Mean - o.Mean) / o.Mean
		// Disjoint intervals: the closest plausible means still disagree.
		disjoint := o.Mean+o.CI < c.Mean-c.CI || c.Mean+c.CI < o.Mean-o.CI
		verdict := "~"
		switch {
		case gate && c.N > 1 && o.N > 1 && disjoint && delta > margin:
			verdict = "REGRESSION"
			regressed = append(regressed, name)
		case disjoint && delta < -margin:
			verdict = "improved"
		case c.N == 1 || o.N == 1:
			verdict = "n=1"
		}
		fmt.Printf("  %-46s %s -> %s  %+6.1f%%  %s\n",
			name, formatStat(o), formatStat(c), delta*100, verdict)
	}
	return regressed
}

// formatStat renders "mean ±ci (n=K)" with the interval omitted at n=1.
func formatStat(s summary) string {
	if s.N < 2 {
		return fmt.Sprintf("%.4g", s.Mean)
	}
	return fmt.Sprintf("%.4g ±%.2g (n=%d)", s.Mean, s.CI, s.N)
}

// checkTrajectory is the CI gate for the committed perf trajectory: a
// missing, unparsable, wrong-schema or empty file fails loudly — a corrupt
// BENCH_perf.json must never pass silently — and the last two runs are
// compared statistically (see compareRuns).
func checkTrajectory(path string, margin float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("trajectory %s unreadable: %v", path, err)
	}
	var file File
	if err := json.Unmarshal(data, &file); err != nil {
		fatal("trajectory %s is not valid JSON: %v", path, err)
	}
	if file.Schema != schema {
		fatal("trajectory %s has schema %q, want %q", path, file.Schema, schema)
	}
	if len(file.Runs) == 0 {
		fatal("trajectory %s records no runs", path)
	}
	for i, run := range file.Runs {
		if run.Label == "" {
			fatal("trajectory %s: run %d has no label", path, i)
		}
		if len(run.Benchmarks) == 0 {
			fatal("trajectory %s: run %q records no benchmarks", path, run.Label)
		}
	}
	if len(file.Runs) >= 2 {
		prev, last := file.Runs[len(file.Runs)-2], file.Runs[len(file.Runs)-1]
		// Gate only same-machine runs: across CPUs the suite moves ~2× on
		// hardware alone (ROADMAP), which no per-benchmark margin absorbs.
		gate := prev.CPU != "" && prev.CPU == last.CPU
		if regressed := compareRuns(prev, last, margin, gate); len(regressed) > 0 {
			fatal("run %q regressed vs %q on: %s", last.Label, prev.Label, strings.Join(regressed, ", "))
		}
	}
	labels := make([]string, len(file.Runs))
	for i, run := range file.Runs {
		labels[i] = run.Label
	}
	fmt.Printf("benchjson: %s ok (%d runs: %s)\n", path, len(file.Runs), strings.Join(labels, ", "))
}

// gitCommit best-effort resolves the working tree's HEAD; empty when git (or
// a repository) is unavailable.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// Command benchjson converts `go test -bench -benchmem` output (stdin) into
// a machine-readable perf-trajectory file. Each invocation appends one
// labeled run to the output JSON, so the file accumulates the project's
// measured history: every perf PR appends its numbers and diffs against the
// runs already recorded (see the "Performance" section of the README for the
// file format).
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | benchjson -label pr2 -o BENCH_perf.json
//	benchjson -check -o BENCH_perf.json   # CI gate: fail when missing/invalid
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark line: the standard ns/op, B/op and allocs/op
// columns plus any custom ReportMetric columns (keyed by unit).
type Benchmark struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labeled invocation of the benchmark suite.
type Run struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	Commit     string      `json:"commit,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk trajectory: runs in append order, oldest first.
type File struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

const schema = "seoracle-bench/v1"

func main() {
	var (
		label = flag.String("label", "local", "label for this run (e.g. the PR name)")
		out   = flag.String("o", "BENCH_perf.json", "trajectory file to append to")
		check = flag.Bool("check", false, "validate the trajectory file and exit non-zero when it is missing, unparsable or empty")
	)
	flag.Parse()

	if *check {
		checkTrajectory(*out)
		return
	}

	run := Run{
		Label:  *label,
		Date:   time.Now().UTC().Format(time.RFC3339),
		Commit: gitCommit(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	sawFail := false
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay tee-able: pass the raw output through
		// `make` pipes without pipefail, so go test's exit code is lost:
		// detect failure from the output instead and refuse to record a
		// partial (or failing) run as a trajectory point.
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") {
			sawFail = true
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			run.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			run.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				run.Benchmarks = append(run.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal("reading stdin: %v", err)
	}
	if sawFail {
		fatal("benchmark run FAILed; not recording it in the trajectory")
	}
	if len(run.Benchmarks) == 0 {
		fatal("no benchmark lines found on stdin (pipe `go test -bench` output in)")
	}

	var file File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fatal("existing %s is not a trajectory file: %v", *out, err)
		}
	} else if !os.IsNotExist(err) {
		fatal("reading %s: %v", *out, err)
	}
	file.Schema = schema
	file.Runs = append(file.Runs, run)

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal("encoding: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended run %q (%d benchmarks) to %s (%d runs total)\n",
		run.Label, len(run.Benchmarks), *out, len(file.Runs))
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkFig8_QuerySE-8   2224640   159.0 ns/op   235.0 ssads   64 B/op   2 allocs/op
//
// The "-8" GOMAXPROCS suffix is stripped from the name so runs on different
// machines stay comparable by name.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}

// checkTrajectory is the CI gate for the committed perf trajectory: a
// missing, unparsable, wrong-schema or empty file fails loudly — a corrupt
// BENCH_perf.json must never pass silently.
func checkTrajectory(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("trajectory %s unreadable: %v", path, err)
	}
	var file File
	if err := json.Unmarshal(data, &file); err != nil {
		fatal("trajectory %s is not valid JSON: %v", path, err)
	}
	if file.Schema != schema {
		fatal("trajectory %s has schema %q, want %q", path, file.Schema, schema)
	}
	if len(file.Runs) == 0 {
		fatal("trajectory %s records no runs", path)
	}
	for i, run := range file.Runs {
		if run.Label == "" {
			fatal("trajectory %s: run %d has no label", path, i)
		}
		if len(run.Benchmarks) == 0 {
			fatal("trajectory %s: run %q records no benchmarks", path, run.Label)
		}
	}
	labels := make([]string, len(file.Runs))
	for i, run := range file.Runs {
		labels[i] = run.Label
	}
	fmt.Printf("benchjson: %s ok (%d runs: %s)\n", path, len(file.Runs), strings.Join(labels, ", "))
}

// gitCommit best-effort resolves the working tree's HEAD; empty when git (or
// a repository) is unavailable.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
